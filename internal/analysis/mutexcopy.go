package analysis

import (
	"go/ast"
	"go/types"
)

// MutexCopy flags by-value copies of lock-bearing values: value receivers and
// value parameters whose type (transitively) contains a sync.Mutex, RWMutex,
// WaitGroup, Once, Cond, Pool, or Map; assignments that copy such a value out
// of an existing variable; and range clauses that copy lock-bearing elements.
// A copied lock splits what callers believe is one critical section into two
// independent ones — the solver stats merge would, for example, race exactly
// when the guard looked strongest. Fresh values (composite literals, call
// results) are fine.
var MutexCopy = &Analyzer{
	Name: "mutexcopy",
	Doc:  "flags by-value copies of lock-bearing structs",
	Run:  runMutexCopy,
}

var lockNames = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Once": true, "Cond": true, "Pool": true, "Map": true,
}

// containsLock reports whether a value of type t embeds a sync lock by value.
func containsLock(t types.Type) bool {
	return lockIn(t, map[types.Type]bool{})
}

func lockIn(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		if pkg := named.Obj().Pkg(); pkg != nil && pkg.Path() == "sync" && lockNames[named.Obj().Name()] {
			return true
		}
		return lockIn(named.Underlying(), seen)
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if lockIn(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return lockIn(u.Elem(), seen)
	}
	return false
}

// copiesExisting reports whether e denotes an existing value (so assigning it
// copies), as opposed to a fresh composite literal or call result.
func copiesExisting(e ast.Expr) bool {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
		return true
	case *ast.StarExpr:
		return true // dereference always copies the pointee
	}
	return false
}

func runMutexCopy(p *Pass) {
	checkFieldList := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := p.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if _, ptr := t.Underlying().(*types.Pointer); ptr {
				continue
			}
			if containsLock(t) {
				p.Reportf(field.Pos(), "%s of lock-bearing type %s is passed by value, copying its lock; use a pointer", what, t)
			}
		}
	}
	for _, f := range p.Unit.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.FuncDecl:
				checkFieldList(st.Recv, "receiver")
				checkFieldList(st.Type.Params, "parameter")
			case *ast.FuncLit:
				checkFieldList(st.Type.Params, "parameter")
			case *ast.AssignStmt:
				if len(st.Lhs) != len(st.Rhs) {
					return true // tuple assignment from a call: fresh values
				}
				for i, rhs := range st.Rhs {
					if id, ok := st.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						continue // discarded into blank: no live copy escapes
					}
					if !copiesExisting(rhs) {
						continue
					}
					t := p.TypeOf(rhs)
					if t != nil && containsLock(t) {
						p.Reportf(st.Lhs[i].Pos(), "assignment copies lock-bearing value %s (type %s); take a pointer instead",
							types.ExprString(rhs), t)
					}
				}
			case *ast.ValueSpec:
				for i, v := range st.Values {
					if i < len(st.Names) && st.Names[i].Name == "_" {
						continue // discarded into blank: no live copy escapes
					}
					if !copiesExisting(v) {
						continue
					}
					t := p.TypeOf(v)
					if t != nil && containsLock(t) {
						p.Reportf(v.Pos(), "declaration copies lock-bearing value %s (type %s); take a pointer instead",
							types.ExprString(v), t)
					}
				}
			case *ast.RangeStmt:
				if st.Value != nil {
					if t := p.TypeOf(st.Value); t != nil && containsLock(t) {
						p.Reportf(st.Value.Pos(), "range copies lock-bearing elements (type %s); iterate by index or over pointers", t)
					}
				}
			}
			return true
		})
	}
}
