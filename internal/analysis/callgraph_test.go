package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// loadCallgraphFixture builds a Module over the callgraph fixture package.
func loadCallgraphFixture(t *testing.T) *Module {
	t.Helper()
	l := sharedLoader(t)
	dir, err := filepath.Abs(filepath.Join("testdata", "src", "callgraph"))
	if err != nil {
		t.Fatalf("abs: %v", err)
	}
	units, err := l.Load([]string{dir})
	if err != nil {
		t.Fatalf("load callgraph fixture: %v", err)
	}
	return NewModule(units)
}

// funcBySuffix finds the unique graph node whose ID ends in suffix.
func funcBySuffix(t *testing.T, m *Module, suffix string) *Func {
	t.Helper()
	var found *Func
	for _, fn := range m.Graph.Funcs {
		if strings.HasSuffix(fn.ID, suffix) {
			if found != nil {
				t.Fatalf("two functions match %q: %s and %s", suffix, found.ID, fn.ID)
			}
			found = fn
		}
	}
	if found == nil {
		t.Fatalf("no function matching %q in graph", suffix)
	}
	return found
}

// TestCallGraphInterfaceDispatch pins the sound "all implementers" fallback:
// the dynamic call in Dispatch must resolve to both Step implementations —
// the value-receiver one and the pointer-receiver one — and be marked as an
// interface site.
func TestCallGraphInterfaceDispatch(t *testing.T) {
	m := loadCallgraphFixture(t)
	disp := funcBySuffix(t, m, ".Dispatch")
	var iface *Call
	for _, c := range disp.Calls {
		if c.Iface {
			if iface != nil {
				t.Fatalf("Dispatch has more than one interface call site")
			}
			iface = c
		}
	}
	if iface == nil {
		t.Fatal("Dispatch's s.Step(n) was not resolved as an interface call")
	}
	var ids []string
	for _, callee := range iface.Callees {
		ids = append(ids, callee.ID)
	}
	if len(ids) != 2 {
		t.Fatalf("interface dispatch resolved to %d callees %v, want 2 (alpha.Step and beta.Step)", len(ids), ids)
	}
	if !strings.HasSuffix(ids[0], ".alpha.Step") || !strings.HasSuffix(ids[1], ".beta.Step") {
		t.Errorf("callees = %v, want [...alpha.Step ...beta.Step] in sorted order", ids)
	}
}

// TestCallGraphRecursionFixpoint pins fixpoint convergence on cycles: the
// self-recursive and mutually recursive functions must stabilize well inside
// the iteration backstop, and the clock taint introduced at the bottom of the
// Ping/Pong cycle must propagate to both functions' return summaries.
func TestCallGraphRecursionFixpoint(t *testing.T) {
	m := loadCallgraphFixture(t)
	if m.FixpointIters <= 0 || m.FixpointIters >= maxFixpointIters {
		t.Fatalf("fixpoint took %d iterations (backstop %d): divergence or a broken counter", m.FixpointIters, maxFixpointIters)
	}
	for _, suffix := range []string{".Ping", ".Pong"} {
		fn := funcBySuffix(t, m, suffix)
		if fn.Summary.Ret&taintClock == 0 {
			t.Errorf("%s: clock taint did not propagate around the recursion cycle (Ret=%#x)", fn.ID, fn.Summary.Ret)
		}
	}
	rec := funcBySuffix(t, m, ".Rec")
	if got := intrinsicOf(rec.Summary.Ret); got != 0 {
		t.Errorf("Rec: self-recursion invented intrinsic taint from nowhere (Ret=%#x)", got)
	}
}
