package models

import (
	"math"
	"testing"

	"repro/internal/accel"
	"repro/internal/fit"
)

func TestMemoryMB(t *testing.T) {
	m := &Model{WeightsMB: 100, IntermediateMB: 50}
	if got := m.MemoryMB(4); got != 300 {
		t.Fatalf("MemoryMB(4) = %v, want 300", got)
	}
	if got := m.MemoryMB(0); got != 100 {
		t.Fatalf("MemoryMB(0) = %v, want weights only", got)
	}
}

func TestNamedModelsParameterRanges(t *testing.T) {
	all := append(Fig2Models(), Table1Models()...)
	for _, m := range all {
		if m.Loss < 0.15 || m.Loss > 0.49 {
			t.Errorf("%s: loss %v outside [0.15, 0.49]", m.Name, m.Loss)
		}
		if m.WeightsMB < 33 || m.WeightsMB > 550 {
			t.Errorf("%s: weights %v outside [33, 550]", m.Name, m.WeightsMB)
		}
		if m.CompressedMB < 7 || m.CompressedMB > 98 {
			t.Errorf("%s: compressed %v outside [7, 98]", m.Name, m.CompressedMB)
		}
		if m.IntermediateMB < 55 || m.IntermediateMB > 480 {
			t.Errorf("%s: intermediates %v outside [55, 480]", m.Name, m.IntermediateMB)
		}
		if m.Profile.Kernels <= 0 {
			t.Errorf("%s: empty kernel profile", m.Name)
		}
	}
}

func TestBiggerVersionsAreMoreAccurateAndHeavier(t *testing.T) {
	apps := Catalogue(5, 5)
	for _, app := range apps {
		for v := 1; v < len(app.Models); v++ {
			a, b := app.Models[v-1], app.Models[v]
			if b.Loss >= a.Loss {
				t.Fatalf("%s: loss must strictly decrease with version (%v → %v)", app.Name, a.Loss, b.Loss)
			}
			if b.WeightsMB < a.WeightsMB {
				t.Fatalf("%s: weights must not shrink with version", app.Name)
			}
			la := accel.JetsonNano.SingleLatencyMS(a.Profile)
			lb := accel.JetsonNano.SingleLatencyMS(b.Profile)
			if lb <= la {
				t.Fatalf("%s: bigger version must be slower (%v → %v)", app.Name, la, lb)
			}
		}
	}
}

func TestCatalogueDimensions(t *testing.T) {
	apps := Catalogue(5, 5)
	if len(apps) != 5 {
		t.Fatalf("got %d apps", len(apps))
	}
	for i, app := range apps {
		if app.Index != i {
			t.Fatalf("app %d has index %d", i, app.Index)
		}
		if len(app.Models) != 5 {
			t.Fatalf("app %d has %d models", i, len(app.Models))
		}
		for v, m := range app.Models {
			if m.App != i || m.Version != v {
				t.Fatalf("model bookkeeping wrong at app %d version %d", i, v)
			}
		}
		if app.RequestMB < 0.2 || app.RequestMB > 3 {
			t.Fatalf("app %d: request size %v outside [0.2, 3]", i, app.RequestMB)
		}
	}
	if got := AllModels(apps); len(got) != 25 {
		t.Fatalf("AllModels = %d, want 25", len(got))
	}
}

func TestCatalogueDeterministic(t *testing.T) {
	a := Catalogue(5, 5)
	b := Catalogue(5, 5)
	for i := range a {
		for v := range a[i].Models {
			if *a[i].Models[v] != *b[i].Models[v] {
				t.Fatalf("catalogue is not deterministic at app %d version %d", i, v)
			}
		}
	}
}

func TestCatalogueEdgeCases(t *testing.T) {
	if Catalogue(0, 5) != nil || Catalogue(5, 0) != nil {
		t.Fatal("degenerate catalogue should be nil")
	}
	one := Catalogue(1, 1)
	if len(one) != 1 || len(one[0].Models) != 1 {
		t.Fatal("1x1 catalogue broken")
	}
	big := Catalogue(8, 7) // more apps than named apps
	if len(big) != 8 {
		t.Fatal("catalogue must extend beyond named applications")
	}
}

func TestCatalogueLatenciesInPaperRange(t *testing.T) {
	// Paper: γ ∈ [18, 770] ms across models × edges; allow a loose envelope.
	apps := Catalogue(5, 5)
	devices := []*accel.Device{&accel.JetsonNano, &accel.JetsonNX, &accel.Atlas200DK}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, m := range AllModels(apps) {
		for _, d := range devices {
			l := d.SingleLatencyMS(m.Profile)
			lo = math.Min(lo, l)
			hi = math.Max(hi, l)
		}
	}
	if lo < 3 || hi > 1200 {
		t.Fatalf("latency envelope [%v, %v] implausible vs paper [18, 770]", lo, hi)
	}
	if hi/lo < 10 {
		t.Fatalf("latency spread %v too narrow to exercise heterogeneity", hi/lo)
	}
}

func TestFig2TIRShapesMatchPaper(t *testing.T) {
	// The calibrated profiles must reproduce the paper's fitted laws within
	// tolerance: LeNet (0.32, 5, 1.68), GoogLeNet (0.12, 10, 1.30),
	// ResNet-18 (0.12, 8, 1.28) — measured on the Jetson Nano.
	want := []struct {
		eta, c   float64
		etaTol   float64
		cTol     float64
		maxKneeB float64
	}{
		{0.32, 1.68, 0.10, 0.12, 16},
		{0.12, 1.30, 0.06, 0.08, 16},
		{0.12, 1.28, 0.06, 0.08, 16},
	}
	for i, m := range Fig2Models() {
		var samples []fit.Sample
		for b := 1; b <= 16; b++ {
			samples = append(samples, fit.Sample{B: b, TIR: accel.JetsonNano.TIR(m.Profile, b)})
		}
		p, err := fit.Piecewise(samples)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		w := want[i]
		if math.Abs(p.Eta-w.eta) > w.etaTol {
			t.Errorf("%s: η = %.3f, paper %.2f", m.Name, p.Eta, w.eta)
		}
		if math.Abs(p.C-w.c) > w.cTol {
			t.Errorf("%s: C = %.3f, paper %.2f", m.Name, p.C, w.c)
		}
		if p.Beta < 2 || p.Beta > w.maxKneeB {
			t.Errorf("%s: knee %v implausible", m.Name, p.Beta)
		}
	}
}

func TestTable1RegimesMatchPaper(t *testing.T) {
	// Qualitative Table 1 checks: small models are host-bound (CPU ≳ 90%,
	// accelerator < 80%), large models are device-bound (accelerator ≳ 85%).
	smalls := []*Model{Yolov4Tiny, ResNet18}
	larges := []*Model{Yolov4Normal, BERT}
	for _, m := range smalls {
		cpu, busy, _ := accel.JetsonNano.Utilization(m.Profile, 1)
		if cpu < 90 {
			t.Errorf("%s on Nano: CPU %v, want host-bound", m.Name, cpu)
		}
		if busy > 80 {
			t.Errorf("%s on Nano: GPU %v, want under 80", m.Name, busy)
		}
	}
	for _, m := range larges {
		cpu, busy, _ := accel.JetsonNano.Utilization(m.Profile, 1)
		if busy < 85 {
			t.Errorf("%s on Nano: GPU %v, want device-bound", m.Name, busy)
		}
		if cpu > 60 {
			t.Errorf("%s on Nano: CPU %v, want light", m.Name, cpu)
		}
	}
	// FPS ordering from the paper: BERT < Yolov4-n < Yolov4-t < ResNet-18 on
	// both devices, and Atlas beats Nano everywhere.
	for _, d := range []*accel.Device{&accel.JetsonNano, &accel.Atlas200DK} {
		fps := func(m *Model) float64 { return d.Throughput(m.Profile, 1) }
		if !(fps(BERT) < fps(Yolov4Normal) && fps(Yolov4Normal) < fps(Yolov4Tiny) && fps(Yolov4Tiny) < fps(ResNet18)) {
			t.Errorf("%s: FPS ordering broken: %v %v %v %v", d.Name,
				fps(BERT), fps(Yolov4Normal), fps(Yolov4Tiny), fps(ResNet18))
		}
	}
	for _, m := range Table1Models() {
		if accel.Atlas200DK.Throughput(m.Profile, 1) <= accel.JetsonNano.Throughput(m.Profile, 1) {
			t.Errorf("%s: Atlas must outperform Nano", m.Name)
		}
	}
}
