package models

import (
	"math/rand"
	"testing"

	"repro/internal/accel"
	"repro/internal/fit"
)

// TestCalibrationReport logs the Table-1-style and Fig-2-style observables of
// the calibrated profiles; run with -v to inspect during re-calibration.
func TestCalibrationReport(t *testing.T) {
	devices := []*accel.Device{&accel.JetsonNano, &accel.Atlas200DK, &accel.JetsonNX}
	for _, m := range Table1Models() {
		for _, d := range devices[:2] {
			cpu, acc, core := d.Utilization(m.Profile, 1)
			fps := d.Throughput(m.Profile, 1)
			t.Logf("Table1 %-10s %-12s cpu=%5.1f%% accel=%5.1f%% core=%5.1f%% fps=%6.1f lat=%6.1fms",
				m.Name, d.Name, cpu, acc, core, fps, d.SingleLatencyMS(m.Profile))
		}
	}
	rng := rand.New(rand.NewSource(1))
	for _, m := range Fig2Models() {
		var samples []fit.Sample
		for b := 1; b <= 16; b++ {
			for r := 0; r < 5; r++ {
				samples = append(samples, fit.Sample{B: b, TIR: accel.JetsonNano.TIRNoisy(m.Profile, b, 0.02, rng)})
			}
		}
		p, err := fit.Piecewise(samples)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		t.Logf("Fig2 %-10s eta=%.3f beta=%.0f C=%.3f  (paper: LeNet .32/5/1.68, GoogLeNet .12/10/1.30, ResNet .12/8/1.28)",
			m.Name, p.Eta, p.Beta, p.C)
	}
}
