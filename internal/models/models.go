// Package models is the DNN model zoo: the named networks used by the
// paper's motivation experiments (Table 1, Fig. 2) and the 5-application ×
// 5-version catalogue used by its evaluation (§5.1).
//
// Real networks are replaced by their scheduling-relevant characteristics —
// the only properties that ever enter BIRP's optimization problem or the
// simulator:
//
//	loss           ∈ [0.15, 0.49]   (per-request inference error, Eq. 10)
//	weights δ      ∈ [33, 550] MB   (Eq. 6)
//	compressed ξ   ∈ [7, 98] MB     (Eq. 9, model shipping cost)
//	intermediate μ ∈ [55, 480] MB   (Eq. 6, per batch element)
//	request size ζ ∈ [0.2, 3] MB    (Eq. 9, redistribution cost)
//
// plus a kernel profile consumed by package accel, from which device-specific
// single-request latency γ (paper range [18, 770] ms) and the TIR law emerge.
package models

import (
	"fmt"

	"repro/internal/accel"
)

// Model is one deployable DNN inference model version.
type Model struct {
	Name    string
	App     int // application index this model serves, -1 for standalone nets
	Version int // 0 = smallest/least accurate
	// Loss is the model's inference error (lower is better), the loss_ij of Eq. 10.
	Loss float64
	// WeightsMB is δ: memory for the weights.
	WeightsMB float64
	// CompressedMB is ξ: network cost of shipping the (compressed) weights.
	CompressedMB float64
	// IntermediateMB is μ: per-sample activation memory at batch size 1.
	IntermediateMB float64
	// Profile drives the accel execution model.
	Profile accel.KernelProfile
}

// MemoryMB returns the Eq. 6 memory footprint δ + μ·b for batch size b.
func (m *Model) MemoryMB(b int) float64 {
	return m.WeightsMB + m.IntermediateMB*float64(b)
}

// Application is one intelligent application with its model ladder.
type Application struct {
	Name string
	// Index is the application id i.
	Index int
	// RequestMB is ζ: network cost of forwarding one request.
	RequestMB float64
	// SLOFrac is the application's response-time SLO as a fraction of the
	// scheduling slot (the paper's intro: "different response-time SLOs").
	// Zero means 1.0 — the slot itself, the paper's evaluation setting.
	SLOFrac float64
	// Models is the version ladder, smallest first.
	Models []*Model
}

// SLO returns the effective SLO fraction (1.0 when unset).
func (a *Application) SLO() float64 {
	if a.SLOFrac <= 0 {
		return 1.0
	}
	return a.SLOFrac
}

// Named standalone networks for Table 1 and Fig. 2. Profiles are calibrated
// so that the accel model reproduces the paper's utilization/FPS/TIR
// observations (see accel and the table1/fig2 experiments).
var (
	// LeNet: tiny CNN; heavily host-bound, strong TIR rise (Fig. 2a).
	// On the Nano its constant cost is K·L = 2.0 ms against 2.78 ms/sample of
	// host work, so TIR saturates near 1 + 2.0/2.78 ≈ 1.7 (paper: 1.68).
	LeNet = &Model{
		Name: "LeNet", App: -1, Loss: 0.49,
		WeightsMB: 33, CompressedMB: 7, IntermediateMB: 55,
		Profile: accel.KernelProfile{
			Kernels: 8, BlocksPerSample: 1.6, WaveMS: 0.2, HostMSPerSample: 2.78,
		},
	}
	// GoogLeNet: mid CNN (Fig. 2b); plateau ≈ 1 + 5.5/16.7 ≈ 1.33 (paper 1.30).
	GoogLeNet = &Model{
		Name: "GoogLeNet", App: -1, Loss: 0.31,
		WeightsMB: 52, CompressedMB: 13, IntermediateMB: 120,
		Profile: accel.KernelProfile{
			Kernels: 22, BlocksPerSample: 1.5, WaveMS: 0.22, HostMSPerSample: 16.7,
		},
	}
	// ResNet18 appears in Table 1 and Fig. 2c; plateau ≈ 1 + 7/24 ≈ 1.29
	// (paper 1.28); host-bound at batch 1 (Nano CPU ≈ 100%, GPU ≈ 61%).
	ResNet18 = &Model{
		Name: "ResNet-18", App: -1, Loss: 0.30,
		WeightsMB: 45, CompressedMB: 11, IntermediateMB: 100,
		Profile: accel.KernelProfile{
			Kernels: 28, BlocksPerSample: 1.8, WaveMS: 0.68, HostMSPerSample: 24,
		},
	}
	// Yolov4Tiny: small detector; host-bound on both devices (Table 1).
	Yolov4Tiny = &Model{
		Name: "Yolov4-t", App: -1, Loss: 0.42,
		WeightsMB: 38, CompressedMB: 9, IntermediateMB: 90,
		Profile: accel.KernelProfile{
			Kernels: 20, BlocksPerSample: 2.0, WaveMS: 1.52, HostMSPerSample: 36,
		},
	}
	// Yolov4Normal: full detector; device-bound, near-100% GPU (Table 1).
	Yolov4Normal = &Model{
		Name: "Yolov4-n", App: -1, Loss: 0.22,
		WeightsMB: 250, CompressedMB: 48, IntermediateMB: 300,
		Profile: accel.KernelProfile{
			Kernels: 110, BlocksPerSample: 24, WaveMS: 0.6, HostMSPerSample: 65,
		},
	}
	// BERT: large transformer; device-saturating, minimal CPU (Table 1).
	BERT = &Model{
		Name: "BERT", App: -1, Loss: 0.15,
		WeightsMB: 550, CompressedMB: 98, IntermediateMB: 480,
		Profile: accel.KernelProfile{
			Kernels: 144, BlocksPerSample: 40, WaveMS: 1.26, HostMSPerSample: 265,
		},
	}
)

// Fig2Models are the networks profiled in Fig. 2, in panel order.
func Fig2Models() []*Model { return []*Model{LeNet, GoogLeNet, ResNet18} }

// Table1Models are the networks measured in Table 1, in row order.
func Table1Models() []*Model { return []*Model{Yolov4Tiny, Yolov4Normal, ResNet18, BERT} }

// Application names used in the large-scale evaluation (§5.1).
var appNames = []string{
	"object-detection",
	"face-recognition",
	"image-recognition",
	"language-understanding",
	"semantic-segmentation",
}

// Catalogue builds the evaluation catalogue: nApps applications, each with
// nVersions model versions spanning the paper's parameter ranges. The ladder
// is deterministic (no RNG): version v of application a interpolates between
// the small-model and large-model corners, with mild per-application skew so
// applications are heterogeneous.
func Catalogue(nApps, nVersions int) []*Application {
	if nApps <= 0 || nVersions <= 0 {
		return nil
	}
	apps := make([]*Application, nApps)
	for a := 0; a < nApps; a++ {
		name := fmt.Sprintf("app-%d", a)
		if a < len(appNames) {
			name = appNames[a]
		}
		app := &Application{
			Name:  name,
			Index: a,
			// ζ ∈ [0.2, 3] MB across applications.
			RequestMB: lerp(0.2, 3, frac(a, nApps)),
		}
		for v := 0; v < nVersions; v++ {
			t := frac(v, nVersions) // 0 = smallest version
			// Mild application skew keeps ladders distinct but in range; it
			// only touches host work and memory so the latency envelope
			// stays inside the paper's [18, 770] ms band.
			skew := 0.9 + 0.2*frac(a, nApps)
			// The ladder interpolates between the two calibrated corner
			// profiles the paper names (§5.1): ResNet-18 → BERT.
			lo, hi := ResNet18, BERT
			m := &Model{
				Name:    fmt.Sprintf("%s-v%d", name, v),
				App:     a,
				Version: v,
				// loss ∈ [0.15, 0.49]: big models (high v) have low loss.
				// The small loss skew keeps application ladders distinct.
				Loss: clamp(lerp(0.49, 0.15, t)-0.005*float64(a), 0.15, 0.49),
				// δ ∈ [33, 550] MB.
				WeightsMB: clamp(lerp(lo.WeightsMB, hi.WeightsMB, t)*skew, 33, 550),
				// ξ ∈ [7, 98] MB.
				CompressedMB: clamp(lerp(lo.CompressedMB, hi.CompressedMB, t)*skew, 7, 98),
				// μ ∈ [55, 480] MB.
				IntermediateMB: clamp(lerp(lo.IntermediateMB, hi.IntermediateMB, t)*skew, 55, 480),
				Profile: accel.KernelProfile{
					Kernels:         int(lerp(float64(lo.Profile.Kernels), float64(hi.Profile.Kernels), t) + 0.5),
					BlocksPerSample: lerp(lo.Profile.BlocksPerSample, hi.Profile.BlocksPerSample, t*t),
					WaveMS:          lerp(lo.Profile.WaveMS, hi.Profile.WaveMS, t),
					HostMSPerSample: lerp(lo.Profile.HostMSPerSample, hi.Profile.HostMSPerSample, t) * skew,
				},
			}
			app.Models = append(app.Models, m)
		}
		apps[a] = app
	}
	return apps
}

// AllModels flattens a catalogue into one slice.
func AllModels(apps []*Application) []*Model {
	var out []*Model
	for _, a := range apps {
		out = append(out, a.Models...)
	}
	return out
}

func lerp(lo, hi, t float64) float64 { return lo + (hi-lo)*t }

// frac maps index i of n to [0, 1] (0 when n == 1).
func frac(i, n int) float64 {
	if n <= 1 {
		return 0
	}
	return float64(i) / float64(n-1)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
