// Package baseline implements the comparison algorithms of the paper's
// evaluation (§5.2):
//
//   - OAEI — the state-of-the-art model-selection-based inference workload
//     redistribution algorithm (Jin et al., SECON 2020): serial execution,
//     per-request model selection by online-learned latencies, and
//     randomized rounding of the fractional redistribution.
//   - MAX — batches fixed at a large B0 chosen for resource utilization;
//     partial batches are padded.
//   - BIRPOff — BIRP with offline-profiled TIR functions and no online
//     tuning (upper reference line in Fig. 6).
//
// All three reuse the core solving machinery so that differences in results
// come from the algorithms, not implementation quality.
package baseline

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/edgesim"
	"repro/internal/models"
)

// NewMAX builds the MAX baseline: fixed batch size B0, padded batches.
func NewMAX(c *cluster.Cluster, apps []*models.Application, b0 int) (*core.Scheduler, error) {
	return NewMAXConfig(c, apps, b0, nil)
}

// NewMAXConfig is NewMAX with a config hook applied before the scheduler is
// built (worker counts, slot-reuse switches; the hook must not change Mode or
// FixedB0 — those define the baseline).
func NewMAXConfig(c *cluster.Cluster, apps []*models.Application, b0 int, mod func(*core.Config)) (*core.Scheduler, error) {
	cfg := core.Config{
		Cluster: c, Apps: apps,
		Mode: core.ModeFixed, FixedB0: b0,
		DisplayName: "MAX",
	}
	if mod != nil {
		mod(&cfg)
	}
	return core.New(cfg)
}

// NewBIRPOff builds the BIRP-OFF baseline: merged batches planned with
// offline-profiled TIR laws (profiled up to maxB), no online tuning.
func NewBIRPOff(c *cluster.Cluster, apps []*models.Application, maxB int) (*core.Scheduler, error) {
	return NewBIRPOffConfig(c, apps, maxB, nil)
}

// NewBIRPOffConfig is NewBIRPOff with a config hook applied before the
// scheduler is built (worker counts, slot-reuse switches; the hook must not
// change the Provider — the offline profile defines the baseline).
func NewBIRPOffConfig(c *cluster.Cluster, apps []*models.Application, maxB int, mod func(*core.Config)) (*core.Scheduler, error) {
	prov, err := core.ProfileOffline(c, apps, maxB)
	if err != nil {
		return nil, err
	}
	cfg := core.Config{
		Cluster: c, Apps: apps,
		Provider:    prov,
		DisplayName: "BIRP-OFF",
	}
	if mod != nil {
		mod(&cfg)
	}
	return core.New(cfg)
}

// OAEI is the serial model-selection baseline. It wraps a core scheduler in
// ModeSerial, injects an online latency learner as the γ predictor (OAEI's
// online-learning component), and uses randomized rounding in stage 1.
type OAEI struct {
	inner   *core.Scheduler
	learner *latencyLearner
}

// NewOAEI constructs the baseline. seed drives the randomized rounding.
func NewOAEI(c *cluster.Cluster, apps []*models.Application, seed int64) (*OAEI, error) {
	return NewOAEIConfig(c, apps, seed, nil)
}

// NewOAEIConfig constructs the baseline with a config hook applied before the
// inner scheduler is built (penalty overrides for ablations; the hook must
// not change Mode, GammaMS, or the rounding RNG).
func NewOAEIConfig(c *cluster.Cluster, apps []*models.Application, seed int64, mod func(*core.Config)) (*OAEI, error) {
	l := newLatencyLearner(c, apps)
	cfg := core.Config{
		Cluster: c, Apps: apps,
		Mode:        core.ModeSerial,
		DisplayName: "OAEI",
		GammaMS:     l.Predict,
		// OAEI is "model selection-based": one version per (app, edge).
		SingleVersion: true,
		Redist:        core.RedistOptions{RoundRNG: rand.New(rand.NewSource(seed))},
	}
	if mod != nil {
		mod(&cfg)
	}
	inner, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return &OAEI{inner: inner, learner: l}, nil
}

// Name implements edgesim.Scheduler.
func (o *OAEI) Name() string { return o.inner.Name() }

// Decide implements edgesim.Scheduler.
func (o *OAEI) Decide(t int, arrivals [][]int) (*edgesim.Plan, error) {
	return o.inner.Decide(t, arrivals)
}

// Observe implements edgesim.Scheduler: realized per-request times feed the
// latency learner (serial batches have size 1, so BatchMS is the request
// latency); TIR observations also reach the (unused) tuner for symmetry.
func (o *OAEI) Observe(t int, fbs []edgesim.Feedback) {
	for _, fb := range fbs {
		if fb.Batch == 1 {
			o.learner.Update(fb.Edge, fb.App, fb.Version, fb.BatchMS)
		}
	}
	o.inner.Observe(t, fbs)
}

// Learner exposes the latency estimator for tests.
func (o *OAEI) Learner() interface{ Predict(core.ModelKey) float64 } { return o.learner }

// latencyLearner estimates per-(edge, model) single-request latency from
// observations, starting from a deliberately coarse prior (OAEI learns the
// system online rather than assuming a calibrated predictor).
type latencyLearner struct {
	mu    sync.Mutex
	prior float64
	mean  map[core.ModelKey]float64
	count map[core.ModelKey]int
}

func newLatencyLearner(c *cluster.Cluster, apps []*models.Application) *latencyLearner {
	// Prior: the cluster-wide average latency, known from coarse specs.
	var sum float64
	n := 0
	for _, e := range c.Edges {
		for _, a := range apps {
			for _, m := range a.Models {
				sum += e.Device.SingleLatencyMS(m.Profile)
				n++
			}
		}
	}
	prior := 100.0
	if n > 0 {
		prior = sum / float64(n)
	}
	return &latencyLearner{
		prior: prior,
		mean:  map[core.ModelKey]float64{},
		count: map[core.ModelKey]int{},
	}
}

// Predict returns the current latency estimate for a key.
func (l *latencyLearner) Predict(k core.ModelKey) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if c := l.count[k]; c > 0 {
		return l.mean[k]
	}
	return l.prior
}

// Update folds one observed latency into the running mean.
func (l *latencyLearner) Update(edge, app, version int, ms float64) {
	if ms <= 0 {
		return
	}
	k := core.ModelKey{Edge: edge, App: app, Version: version}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.count[k]++
	l.mean[k] += (ms - l.mean[k]) / float64(l.count[k])
}

// String describes the learner state size.
func (l *latencyLearner) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return fmt.Sprintf("latencyLearner{keys=%d prior=%.1fms}", len(l.mean), l.prior)
}
