package baseline

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/edgesim"
	"repro/internal/models"
	"repro/internal/trace"
)

func run(t *testing.T, sched edgesim.Scheduler, c *cluster.Cluster, apps []*models.Application, slots int, seed int64) *edgesim.Results {
	return runLoad(t, sched, c, apps, slots, seed, 6)
}

func runLoad(t *testing.T, sched edgesim.Scheduler, c *cluster.Cluster, apps []*models.Application, slots int, seed int64, mean float64) *edgesim.Results {
	t.Helper()
	sim, err := edgesim.New(edgesim.Config{Cluster: c, Apps: apps, NoiseSigma: 0.02, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Generate(trace.Config{
		Apps: len(apps), Edges: c.N(), Slots: slots, Seed: seed,
		MeanPerSlot: mean, Imbalance: 0.8, BurstProb: 0.05, BurstScale: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sched, tr.R)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestOAEIRunsCleanly(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(2, 3)
	o, err := NewOAEI(c, apps, 1)
	if err != nil {
		t.Fatal(err)
	}
	if o.Name() != "OAEI" {
		t.Fatalf("name = %q", o.Name())
	}
	res := run(t, o, c, apps, 40, 3)
	if res.Served == 0 {
		t.Fatal("OAEI served nothing")
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations[0])
	}
}

func TestOAEIExecutesSerially(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(1, 3)
	o, err := NewOAEI(c, apps, 1)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := o.Decide(0, [][]int{{6, 0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range plan.Deployments {
		if len(d.BatchSizes) != d.Requests {
			t.Fatalf("OAEI must run serial batches: %+v", d)
		}
		for _, b := range d.BatchSizes {
			if b != 1 {
				t.Fatalf("OAEI batch size %d, want 1", b)
			}
		}
	}
}

func TestOAEILatencyLearnerConverges(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(1, 3)
	o, err := NewOAEI(c, apps, 1)
	if err != nil {
		t.Fatal(err)
	}
	key := core.ModelKey{Edge: 0, App: 0, Version: 0}
	before := o.Learner().Predict(key)
	// Feed consistent observations via the Observe path.
	for i := 0; i < 50; i++ {
		o.Observe(i, []edgesim.Feedback{{App: 0, Version: 0, Edge: 0, Batch: 1, TIR: 1, BatchMS: 42}})
	}
	after := o.Learner().Predict(key)
	if after == before {
		t.Fatal("learner did not move from prior")
	}
	if after != 42 {
		t.Fatalf("learned latency = %v, want 42", after)
	}
	// Non-serial feedback (batch > 1) must not pollute the estimate.
	o.Observe(99, []edgesim.Feedback{{App: 0, Version: 0, Edge: 0, Batch: 4, TIR: 1.5, BatchMS: 999}})
	if got := o.Learner().Predict(key); got != 42 {
		t.Fatalf("batched feedback polluted the learner: %v", got)
	}
}

func TestMAXUsesFixedBatches(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(1, 3)
	m, err := NewMAX(c, apps, 16)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := m.Decide(0, [][]int{{20, 3, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Deployments) == 0 {
		t.Fatal("MAX deployed nothing")
	}
	for _, d := range plan.Deployments {
		for _, b := range d.BatchSizes {
			if b != 16 {
				t.Fatalf("MAX batch %d, want exactly B0=16", b)
			}
		}
	}
}

func TestBIRPOffUsesOfflineProfiles(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(1, 3)
	s, err := NewBIRPOff(c, apps, 16)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "BIRP-OFF" {
		t.Fatalf("name = %q", s.Name())
	}
	if _, ok := s.Provider().(*core.OfflineProvider); !ok {
		t.Fatalf("provider is %T, want offline", s.Provider())
	}
	res := run(t, s, c, apps, 30, 5)
	if res.Served == 0 {
		t.Fatal("BIRP-OFF served nothing")
	}
}

// The paper's headline ordering on a moderate workload: BIRP-family loss
// beats OAEI (batching frees compute for better models), and everyone beats
// MAX under constrained memory.
func TestLossOrderingMatchesPaper(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(2, 3)
	slots := 60
	seed := int64(11)
	// Operating point in the compute-bound band where batching pays
	// (see the TestDebugLoadScan sweep).

	birp, err := core.New(core.Config{Cluster: c, Apps: apps})
	if err != nil {
		t.Fatal(err)
	}
	oaei, err := NewOAEI(c, apps, seed)
	if err != nil {
		t.Fatal(err)
	}
	rb := runLoad(t, birp, c, apps, slots, seed, 50)
	ro := runLoad(t, oaei, c, apps, slots, seed, 50)
	if rb.Loss.Total() >= ro.Loss.Total() {
		t.Fatalf("BIRP loss %.1f should beat OAEI loss %.1f", rb.Loss.Total(), ro.Loss.Total())
	}
	if rb.FailureRate() > ro.FailureRate()+0.02 {
		t.Fatalf("BIRP failure rate %.3f should not exceed OAEI %.3f",
			rb.FailureRate(), ro.FailureRate())
	}
}
