package baseline

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/models"
)

func TestNewOAEIConfigHook(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(1, 2)
	called := false
	o, err := NewOAEIConfig(c, apps, 1, func(cfg *core.Config) {
		called = true
		cfg.OverflowPenaltyPerMS = 0.5
	})
	if err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("hook not invoked")
	}
	if o.Name() != "OAEI" {
		t.Fatalf("name = %q", o.Name())
	}
}

func TestLatencyLearnerString(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(1, 2)
	l := newLatencyLearner(c, apps)
	if s := l.String(); !strings.Contains(s, "latencyLearner") {
		t.Fatalf("String = %q", s)
	}
	l.Update(0, 0, 0, -1) // non-positive samples ignored
	if l.Predict(core.ModelKey{}) != l.prior {
		t.Fatal("invalid update must not move the estimate")
	}
}

func TestLatencyLearnerPriorIsClusterAverage(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(1, 3)
	l := newLatencyLearner(c, apps)
	var sum float64
	n := 0
	for _, e := range c.Edges {
		for _, a := range apps {
			for _, m := range a.Models {
				sum += e.Device.SingleLatencyMS(m.Profile)
				n++
			}
		}
	}
	if want := sum / float64(n); l.prior != want {
		t.Fatalf("prior = %v, want %v", l.prior, want)
	}
}

func TestNewBIRPOffRejectsBadProfileRange(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(1, 2)
	if _, err := NewBIRPOff(c, apps, 1); err == nil {
		t.Fatal("maxB=1 cannot identify a TIR law and must error")
	}
}

func TestMAXRejectsZeroB0(t *testing.T) {
	c := cluster.Small()
	apps := models.Catalogue(1, 2)
	if _, err := NewMAX(c, apps, 0); err == nil {
		t.Fatal("B0=0 must error")
	}
}
