// Package accel models edge inference accelerators (Jetson Nano, Jetson NX,
// Huawei Atlas 200DK) at the level BIRP observes them: batch execution time,
// throughput, and resource utilization.
//
// The paper uses physical devices; this substrate replaces them with a
// streaming-multiprocessor occupancy model whose timing has three
// mechanistic components:
//
//   - per-kernel launch/scheduling overhead, independent of batch size —
//     amortized by batching (the source of the TIR rise);
//   - per-sample host work (CPU pre/post-processing, DMA) that is serial in
//     the batch size — the reason TIR growth is sublinear from b = 2 on;
//   - wave-quantized device compute: a kernel issuing g blocks per sample
//     runs ceil(g·b/S) waves over S SMs — once g·b exceeds S, adding batch
//     adds whole waves and throughput saturates (the TIR knee and plateau).
//
// Fitting the measured TIR of this model recovers the paper's empirical
// piecewise law (power function up to a knee, constant beyond — Fig. 2),
// and the derived utilizations echo the Table 1 gap between small models
// (accelerator starved, CPU busy) and large models (accelerator saturated).
package accel

import (
	"fmt"
	"math"
	"math/rand"
)

// DeviceType enumerates the accelerator families used in the paper.
type DeviceType int

const (
	// GPU devices (Jetson family) expose "GPU usage".
	GPU DeviceType = iota
	// NPU devices (Atlas family) expose "NPU usage" and "NPU core usage".
	NPU
)

// String implements fmt.Stringer.
func (d DeviceType) String() string {
	switch d {
	case GPU:
		return "GPU"
	case NPU:
		return "NPU"
	default:
		return fmt.Sprintf("DeviceType(%d)", int(d))
	}
}

// Device is one edge accelerator plus its host CPU.
type Device struct {
	Name string
	Type DeviceType
	// NumSM is the number of streaming multiprocessors (or NPU AI cores).
	NumSM int
	// Clock scales device compute speed (1.0 = reference).
	Clock float64
	// HostSpeed scales host CPU speed (1.0 = reference).
	HostSpeed float64
	// LaunchOverheadMS is the per-kernel launch/scheduling cost in ms.
	LaunchOverheadMS float64
	// MemoryMB is accelerator-visible memory available to inference.
	MemoryMB float64
	// Power draw in watts: the accelerator while computing (BusyW), the host
	// while pre/post-processing (HostW), and the whole board at rest
	// (IdleW). Edge accelerators prioritize energy efficiency (§2.1), so the
	// simulator accounts energy even though the paper does not evaluate it.
	BusyW, HostW, IdleW float64
	// Thermal throttling (opt-in; zero values disable it): once an edge has
	// been busy for ThrottleAfterMS within a slot, every further batch runs
	// ThrottleFactor× slower — the sustained-load behaviour of fanless edge
	// boards. The paper's testbed evaluation does not model it; custom
	// clusters can.
	ThrottleAfterMS float64
	ThrottleFactor  float64
}

// ThrottleScale returns the duration multiplier for work starting after
// busyMS of accumulated activity in the current slot.
func (d *Device) ThrottleScale(busyMS float64) float64 {
	if d.ThrottleAfterMS <= 0 || d.ThrottleFactor <= 1 {
		return 1
	}
	if busyMS < d.ThrottleAfterMS {
		return 1
	}
	return d.ThrottleFactor
}

// KernelProfile describes one DNN inference model's execution footprint.
// It is everything the accelerator model needs to know about a network.
type KernelProfile struct {
	// Kernels is the number of sequential device kernels (≈ layers).
	Kernels int
	// BlocksPerSample is the number of SM blocks one sample issues per
	// kernel; small models under-fill the SM array at batch 1.
	BlocksPerSample float64
	// WaveMS is the duration of one full wave across all SMs, in ms, at
	// reference clock.
	WaveMS float64
	// HostMSPerSample is serial host work per sample (pre/post-processing).
	HostMSPerSample float64
}

// Standard devices, calibrated so that Table 1 utilizations and FPS and the
// Fig. 2 TIR knees land near the paper's reported values.
var (
	// JetsonNano: few SMs, slow host — small models choke on the CPU.
	JetsonNano = Device{
		Name: "Jetson Nano", Type: GPU,
		NumSM: 8, Clock: 1.0, HostSpeed: 1.0,
		LaunchOverheadMS: 0.25, MemoryMB: 4500,
		BusyW: 7, HostW: 3, IdleW: 1.5,
	}
	// JetsonNX: more SMs and a faster host than the Nano.
	JetsonNX = Device{
		Name: "Jetson NX", Type: GPU,
		NumSM: 24, Clock: 2.5, HostSpeed: 2.0,
		LaunchOverheadMS: 0.12, MemoryMB: 6500,
		BusyW: 12, HostW: 4, IdleW: 3,
	}
	// Atlas200DK: wide NPU with strong matrix throughput and a fast host,
	// but low launch cost — its TIR gains from batching are smaller.
	Atlas200DK = Device{
		Name: "Atlas 200DK", Type: NPU,
		NumSM: 16, Clock: 4.0, HostSpeed: 2.45,
		LaunchOverheadMS: 0.1, MemoryMB: 5500,
		BusyW: 10, HostW: 4, IdleW: 2.5,
	}
	// EdgeTPU models the Coral-class accelerator the paper's related work
	// cites ([13]): a narrow, highly clocked systolic device with very
	// little memory and a weak host — strong on small CNNs, starved on
	// transformer-class models. Not part of the paper's testbed; available
	// for custom clusters.
	EdgeTPU = Device{
		Name: "Edge TPU", Type: NPU,
		NumSM: 4, Clock: 2.0, HostSpeed: 0.8,
		LaunchOverheadMS: 0.3, MemoryMB: 1000,
		BusyW: 2, HostW: 2.5, IdleW: 0.5,
	}
)

// BatchTimeMS returns the deterministic wall-clock time in ms for one batch
// of size b. Host work overlaps device work; the slower side dominates, and
// launch overhead is serialized with both.
func (d *Device) BatchTimeMS(p KernelProfile, b int) float64 {
	if b <= 0 {
		return 0
	}
	device := d.deviceComputeMS(p, b)
	host := p.HostMSPerSample * float64(b) / d.HostSpeed
	launch := float64(p.Kernels) * d.LaunchOverheadMS
	return launch + math.Max(device, host)
}

// deviceComputeMS is the wave-quantized accelerator time for batch b.
func (d *Device) deviceComputeMS(p KernelProfile, b int) float64 {
	blocks := p.BlocksPerSample * float64(b)
	waves := math.Ceil(blocks / float64(d.NumSM))
	if waves < 1 {
		waves = 1
	}
	return float64(p.Kernels) * waves * p.WaveMS / d.Clock
}

// BatchTimeNoisyMS perturbs BatchTimeMS with multiplicative log-normal-ish
// noise (σ relative), reproducing the run-to-run scatter of Fig. 2's raw
// points. rng must be non-nil.
func (d *Device) BatchTimeNoisyMS(p KernelProfile, b int, sigma float64, rng *rand.Rand) float64 {
	t := d.BatchTimeMS(p, b)
	if sigma <= 0 {
		return t
	}
	noise := 1 + rng.NormFloat64()*sigma
	if noise < 0.5 {
		noise = 0.5
	}
	return t * noise
}

// Throughput returns samples per second at batch size b.
func (d *Device) Throughput(p KernelProfile, b int) float64 {
	t := d.BatchTimeMS(p, b)
	if t <= 0 {
		return 0
	}
	return float64(b) * 1000 / t
}

// TIR returns the Throughput Improvement Ratio at batch b (paper Eq. 1):
// throughput(b)/throughput(1).
func (d *Device) TIR(p KernelProfile, b int) float64 {
	base := d.Throughput(p, 1)
	if base <= 0 {
		return 0
	}
	return d.Throughput(p, b) / base
}

// TIRNoisy measures TIR with independent noisy timings of the batch and the
// baseline, mirroring a real profiling run.
func (d *Device) TIRNoisy(p KernelProfile, b int, sigma float64, rng *rand.Rand) float64 {
	tb := d.BatchTimeNoisyMS(p, b, sigma, rng)
	t1 := d.BatchTimeMS(p, 1) // baseline profiled once, well-averaged
	if tb <= 0 || t1 <= 0 {
		return 0
	}
	return (float64(b) / tb) / (1 / t1)
}

// Utilization reports resource usage percentages during sustained serial
// execution at batch size b:
//
//	cpu  — host busy fraction (per-sample work + launch submission)
//	busy — device busy fraction over wall time ("GPU usage" on Jetson,
//	       "NPU core usage" on Atlas)
//	occ  — occupancy-weighted busy fraction: busy scaled by how full the SM
//	       array is while active ("NPU usage" on Atlas, where small models
//	       leave most AI cores idle)
func (d *Device) Utilization(p KernelProfile, b int) (cpu, busy, occ float64) {
	wall := d.BatchTimeMS(p, b)
	if wall <= 0 {
		return 0, 0, 0
	}
	host := p.HostMSPerSample*float64(b)/d.HostSpeed + float64(p.Kernels)*d.LaunchOverheadMS
	device := d.deviceComputeMS(p, b)
	cpu = clampPct(100 * host / wall)
	busy = clampPct(100 * device / wall)
	blocks := p.BlocksPerSample * float64(b)
	waves := math.Ceil(blocks / float64(d.NumSM))
	occupancy := blocks / (waves * float64(d.NumSM))
	occ = clampPct(busy * occupancy)
	return cpu, busy, occ
}

func clampPct(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 100 {
		return 100
	}
	return v
}

// SingleLatencyMS is the batch-1 latency, the γ of paper Eq. 7 as profiled
// by the latency predictor the paper cites ([36]).
func (d *Device) SingleLatencyMS(p KernelProfile) float64 { return d.BatchTimeMS(p, 1) }

// BatchEnergyJ estimates the energy of executing one batch of size b, in
// joules: accelerator compute at BusyW, serialized host work (including
// launch submission) at HostW. Idle draw between batches is accounted by the
// caller, which knows the slot length.
func (d *Device) BatchEnergyJ(p KernelProfile, b int) float64 {
	if b <= 0 {
		return 0
	}
	device := d.deviceComputeMS(p, b)
	host := p.HostMSPerSample*float64(b)/d.HostSpeed + float64(p.Kernels)*d.LaunchOverheadMS
	return (device*d.BusyW + host*d.HostW) / 1000
}

// IdleEnergyJ is the board's rest draw over ms milliseconds, in joules.
func (d *Device) IdleEnergyJ(ms float64) float64 {
	if ms <= 0 {
		return 0
	}
	return ms * d.IdleW / 1000
}

// MaxUsefulBatch returns the largest batch size whose marginal TIR gain over
// b−1 still exceeds eps; used by profiling loops to bound sweeps.
func (d *Device) MaxUsefulBatch(p KernelProfile, eps float64, cap int) int {
	best := 1
	prev := 1.0
	for b := 2; b <= cap; b++ {
		t := d.TIR(p, b)
		if t > prev+eps {
			best = b
		}
		prev = t
	}
	return best
}
