package accel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

var testProfile = KernelProfile{
	Kernels: 20, BlocksPerSample: 2, WaveMS: 0.5, HostMSPerSample: 10,
}

func TestDeviceTypeString(t *testing.T) {
	if GPU.String() != "GPU" || NPU.String() != "NPU" {
		t.Fatal("device type strings wrong")
	}
	if DeviceType(9).String() == "" {
		t.Fatal("unknown device type must still stringify")
	}
}

func TestBatchTimeZeroAndNegative(t *testing.T) {
	if JetsonNano.BatchTimeMS(testProfile, 0) != 0 {
		t.Fatal("batch 0 must take no time")
	}
	if JetsonNano.BatchTimeMS(testProfile, -4) != 0 {
		t.Fatal("negative batch must take no time")
	}
}

func TestBatchTimeMonotone(t *testing.T) {
	prev := 0.0
	for b := 1; b <= 64; b++ {
		cur := JetsonNano.BatchTimeMS(testProfile, b)
		if cur < prev {
			t.Fatalf("batch time decreased at b=%d: %v < %v", b, cur, prev)
		}
		prev = cur
	}
}

func TestBatchTimeComponents(t *testing.T) {
	// Hand-computed: launch 20·0.25 = 5; device 20·ceil(2/8)·0.5 = 10;
	// host 10·1 = 10; total = 5 + max(10, 10) = 15.
	got := JetsonNano.BatchTimeMS(testProfile, 1)
	if math.Abs(got-15) > 1e-12 {
		t.Fatalf("BatchTimeMS(1) = %v, want 15", got)
	}
	// b = 8: blocks 16 → 2 waves → device 20; host 80 → total 5 + 80 = 85.
	got = JetsonNano.BatchTimeMS(testProfile, 8)
	if math.Abs(got-85) > 1e-12 {
		t.Fatalf("BatchTimeMS(8) = %v, want 85", got)
	}
}

func TestThroughputAndTIR(t *testing.T) {
	d := &JetsonNano
	if tir := d.TIR(testProfile, 1); math.Abs(tir-1) > 1e-12 {
		t.Fatalf("TIR(1) = %v, want 1", tir)
	}
	// TIR must be ≥ 1 (batching never hurts in this model) and bounded by b.
	for b := 2; b <= 32; b++ {
		tir := d.TIR(testProfile, b)
		if tir < 1-1e-9 || tir > float64(b)+1e-9 {
			t.Fatalf("TIR(%d) = %v out of [1, b]", b, tir)
		}
	}
}

func TestTIRSaturates(t *testing.T) {
	d := &JetsonNano
	// Far beyond the knee, TIR(2b) ≈ TIR(b): growth must flatten.
	t64 := d.TIR(testProfile, 64)
	t128 := d.TIR(testProfile, 128)
	if math.Abs(t128-t64)/t64 > 0.02 {
		t.Fatalf("TIR did not saturate: TIR(64)=%v TIR(128)=%v", t64, t128)
	}
}

func TestTIRAsymptoteMatchesClosedForm(t *testing.T) {
	// For a host-bound profile the plateau is 1 + K·L/h (launch amortization
	// over per-sample host work).
	p := KernelProfile{Kernels: 8, BlocksPerSample: 1.6, WaveMS: 0.2, HostMSPerSample: 2.78}
	d := &JetsonNano
	want := 1 + float64(p.Kernels)*d.LaunchOverheadMS/(p.HostMSPerSample/d.HostSpeed)
	got := d.TIR(p, 4096)
	if math.Abs(got-want)/want > 0.02 {
		t.Fatalf("TIR asymptote = %v, closed form %v", got, want)
	}
}

func TestUtilizationRegimes(t *testing.T) {
	// Host-bound profile: CPU near 100, device under 80.
	host := KernelProfile{Kernels: 28, BlocksPerSample: 1.8, WaveMS: 0.68, HostMSPerSample: 24}
	cpu, busy, occ := JetsonNano.Utilization(host, 1)
	if cpu < 95 {
		t.Fatalf("host-bound profile should saturate CPU: %v", cpu)
	}
	if busy > 80 {
		t.Fatalf("host-bound profile should underuse the device: %v", busy)
	}
	if occ > busy+1e-9 {
		t.Fatalf("occupancy-weighted usage %v cannot exceed busy %v", occ, busy)
	}
	// Device-bound profile: device near 100, CPU low.
	dev := KernelProfile{Kernels: 144, BlocksPerSample: 40, WaveMS: 1.26, HostMSPerSample: 265}
	cpu, busy, _ = JetsonNano.Utilization(dev, 1)
	if busy < 90 {
		t.Fatalf("device-bound profile should saturate the device: %v", busy)
	}
	if cpu > 50 {
		t.Fatalf("device-bound profile should leave CPU light: %v", cpu)
	}
}

func TestUtilizationZeroBatch(t *testing.T) {
	cpu, busy, occ := JetsonNano.Utilization(testProfile, 0)
	if cpu != 0 || busy != 0 || occ != 0 {
		t.Fatal("zero batch must report zero utilization")
	}
}

func TestSingleLatencyInPaperRange(t *testing.T) {
	// Paper: single-request latency spans [18, 770] ms over models × edges.
	// The calibrated extreme profiles must stay within a loose envelope.
	small := KernelProfile{Kernels: 20, BlocksPerSample: 2.0, WaveMS: 1.52, HostMSPerSample: 36}
	large := KernelProfile{Kernels: 144, BlocksPerSample: 40, WaveMS: 1.26, HostMSPerSample: 265}
	for _, d := range []*Device{&JetsonNano, &JetsonNX, &Atlas200DK} {
		lo := d.SingleLatencyMS(small)
		hi := d.SingleLatencyMS(large)
		if lo < 5 || hi > 1100 {
			t.Fatalf("%s: latencies (%v, %v) outside plausible envelope", d.Name, lo, hi)
		}
		if hi <= lo {
			t.Fatalf("%s: large model must be slower than small", d.Name)
		}
	}
}

func TestDeviceSpeedOrdering(t *testing.T) {
	// Atlas and NX must beat the Nano on every profile (they do in Table 1).
	for _, p := range []KernelProfile{testProfile,
		{Kernels: 144, BlocksPerSample: 40, WaveMS: 1.26, HostMSPerSample: 265}} {
		nano := JetsonNano.Throughput(p, 1)
		nx := JetsonNX.Throughput(p, 1)
		atlas := Atlas200DK.Throughput(p, 1)
		if nx <= nano || atlas <= nano {
			t.Fatalf("device ordering violated: nano=%v nx=%v atlas=%v", nano, nx, atlas)
		}
	}
}

func TestBatchTimeNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := JetsonNano.BatchTimeMS(testProfile, 4)
	var sum float64
	const n = 2000
	for i := 0; i < n; i++ {
		v := JetsonNano.BatchTimeNoisyMS(testProfile, 4, 0.05, rng)
		if v <= 0 {
			t.Fatal("noisy time must stay positive")
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-base)/base > 0.02 {
		t.Fatalf("noise must be unbiased: mean %v vs base %v", mean, base)
	}
	if got := JetsonNano.BatchTimeNoisyMS(testProfile, 4, 0, rng); got != base {
		t.Fatal("sigma=0 must be deterministic")
	}
}

func TestTIRNoisyPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for b := 1; b <= 16; b++ {
		v := JetsonNano.TIRNoisy(testProfile, b, 0.05, rng)
		if v <= 0 {
			t.Fatalf("TIRNoisy(%d) = %v", b, v)
		}
	}
}

func TestMaxUsefulBatch(t *testing.T) {
	b := JetsonNano.MaxUsefulBatch(testProfile, 0.01, 64)
	if b < 2 || b > 64 {
		t.Fatalf("MaxUsefulBatch = %d", b)
	}
	// With an enormous epsilon nothing is ever useful beyond 1.
	if got := JetsonNano.MaxUsefulBatch(testProfile, 100, 64); got != 1 {
		t.Fatalf("MaxUsefulBatch(eps=100) = %d, want 1", got)
	}
}

// Property: throughput(b)·BatchTime(b) == 1000·b for all devices/batches.
func TestQuickThroughputTimeIdentity(t *testing.T) {
	devices := []*Device{&JetsonNano, &JetsonNX, &Atlas200DK}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := KernelProfile{
			Kernels:         1 + rng.Intn(150),
			BlocksPerSample: 0.5 + rng.Float64()*40,
			WaveMS:          0.1 + rng.Float64()*2,
			HostMSPerSample: rng.Float64() * 300,
		}
		d := devices[rng.Intn(len(devices))]
		b := 1 + rng.Intn(64)
		lhs := d.Throughput(p, b) * d.BatchTimeMS(p, b)
		return math.Abs(lhs-1000*float64(b)) < 1e-6*1000*float64(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: TIR is always in [1, b] — batching can only amortize overheads.
func TestQuickTIRBounds(t *testing.T) {
	devices := []*Device{&JetsonNano, &JetsonNX, &Atlas200DK}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := KernelProfile{
			Kernels:         1 + rng.Intn(150),
			BlocksPerSample: 0.5 + rng.Float64()*40,
			WaveMS:          0.1 + rng.Float64()*2,
			HostMSPerSample: rng.Float64() * 300,
		}
		d := devices[rng.Intn(len(devices))]
		b := 1 + rng.Intn(64)
		tir := d.TIR(p, b)
		return tir >= 1-1e-9 && tir <= float64(b)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBatchTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		JetsonNano.BatchTimeMS(testProfile, 8)
	}
}

func TestThrottleScale(t *testing.T) {
	d := JetsonNano // zero thermal fields: always 1
	if d.ThrottleScale(0) != 1 || d.ThrottleScale(1e9) != 1 {
		t.Fatal("throttling must be off by default")
	}
	hot := Device{Name: "hot", NumSM: 4, Clock: 1, HostSpeed: 1,
		LaunchOverheadMS: 0.1, ThrottleAfterMS: 1000, ThrottleFactor: 1.5}
	if hot.ThrottleScale(500) != 1 {
		t.Fatal("below the threshold no throttling")
	}
	if hot.ThrottleScale(1500) != 1.5 {
		t.Fatal("above the threshold the factor applies")
	}
	// Degenerate factor ≤ 1 disables.
	weird := hot
	weird.ThrottleFactor = 0.5
	if weird.ThrottleScale(1e6) != 1 {
		t.Fatal("factor ≤ 1 must disable throttling")
	}
}
