package metrics

import (
	"math"
	"strings"
	"testing"
	"unicode/utf8"
)

func TestSparklineBasics(t *testing.T) {
	if got := Sparkline(nil); got != "" {
		t.Fatalf("empty input → %q", got)
	}
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	if utf8.RuneCountInString(s) != 8 {
		t.Fatalf("length %d, want 8 runes", utf8.RuneCountInString(s))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[7] != '█' {
		t.Fatalf("extremes wrong: %q", s)
	}
	for i := 1; i < len(runes); i++ {
		if runes[i] < runes[i-1] {
			t.Fatalf("monotone input must give monotone sparkline: %q", s)
		}
	}
}

func TestSparklineFlatAndGarbage(t *testing.T) {
	s := Sparkline([]float64{5, 5, 5})
	if utf8.RuneCountInString(s) != 3 {
		t.Fatalf("flat series length wrong: %q", s)
	}
	s = Sparkline([]float64{math.NaN(), 1, math.Inf(1)})
	runes := []rune(s)
	if runes[0] != ' ' || runes[2] != ' ' {
		t.Fatalf("NaN/Inf must render as spaces: %q", s)
	}
	s = Sparkline([]float64{math.NaN(), math.NaN()})
	if s != "  " {
		t.Fatalf("all-invalid series: %q", s)
	}
}

func TestDownsample(t *testing.T) {
	in := []float64{1, 1, 2, 2, 3, 3, 4, 4}
	out := Downsample(in, 4)
	want := []float64{1, 2, 3, 4}
	if len(out) != 4 {
		t.Fatalf("length %d", len(out))
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
	if got := Downsample(in, 100); len(got) != len(in) {
		t.Fatal("short inputs pass through")
	}
	if got := Downsample(in, 0); len(got) != len(in) {
		t.Fatal("n=0 passes through")
	}
}

func TestSeriesChart(t *testing.T) {
	series := map[string][]float64{
		"BIRP": {1, 2, 3, 4},
		"OAEI": {2, 3, 4, 5},
	}
	out := SeriesChart(10, series, []string{"BIRP", "OAEI", "missing"})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("expected 2 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "BIRP") || !strings.Contains(lines[0], "[1.0, 4.0]") {
		t.Fatalf("line 0: %q", lines[0])
	}
}

func TestSummarizePercentiles(t *testing.T) {
	samples := make([]float64, 100)
	for i := range samples {
		samples[i] = float64(i + 1)
	}
	p := SummarizePercentiles(samples)
	if p.P50 != 50 || p.P90 != 90 || p.P99 != 99 || p.Max != 100 {
		t.Fatalf("percentiles = %+v", p)
	}
	if s := p.String(); !strings.Contains(s, "p99=99.000") {
		t.Fatalf("String = %q", s)
	}
}
