package metrics

import (
	"fmt"
	"math"
	"strings"
)

// sparkRunes are the eight block heights of a unicode sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a one-line unicode sparkline, rescaled to the
// data range. Empty input yields an empty string; NaN/Inf samples render as
// spaces.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if math.IsInf(lo, 1) {
		return strings.Repeat(" ", len(values))
	}
	span := hi - lo
	var b strings.Builder
	for _, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			b.WriteRune(' ')
			continue
		}
		idx := 0
		if span > 0 {
			idx = int((v - lo) / span * float64(len(sparkRunes)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkRunes) {
			idx = len(sparkRunes) - 1
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// Downsample reduces values to at most n points by averaging equal buckets;
// it returns the input when already short enough.
func Downsample(values []float64, n int) []float64 {
	if n <= 0 || len(values) <= n {
		return values
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		start := i * len(values) / n
		end := (i + 1) * len(values) / n
		if end == start {
			end = start + 1
		}
		var s float64
		for _, v := range values[start:end] {
			s += v
		}
		out[i] = s / float64(end-start)
	}
	return out
}

// SeriesChart renders named series as labelled sparklines over a shared
// horizontal axis, with min/max annotations — the terminal stand-in for the
// paper's line plots.
//
//	BIRP      ▄▄▅▃▅▆▄▇█▆▅▃▂▁▂▄  [12.1, 98.5]
//	OAEI      ▅▅▆▄▆▇▅███▇▆▄▃▂▃▅  [14.0, 121.2]
func SeriesChart(width int, series map[string][]float64, order []string) string {
	if width <= 0 {
		width = 60
	}
	nameW := 0
	for _, name := range order {
		if len(name) > nameW {
			nameW = len(name)
		}
	}
	var b strings.Builder
	for _, name := range order {
		vals, ok := series[name]
		if !ok {
			continue
		}
		ds := Downsample(vals, width)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range vals {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		fmt.Fprintf(&b, "%-*s %s  [%.1f, %.1f]\n", nameW, name, Sparkline(ds), lo, hi)
	}
	return b.String()
}

// Percentiles summarizes a sample with the quantiles latency reports use.
type Percentiles struct {
	P50, P90, P99, Max float64
}

// SummarizePercentiles computes p50/p90/p99/max of the sample.
func SummarizePercentiles(samples []float64) Percentiles {
	c := NewCDF(samples)
	return Percentiles{
		P50: c.Quantile(0.50),
		P90: c.Quantile(0.90),
		P99: c.Quantile(0.99),
		Max: c.Quantile(1.0),
	}
}

// String renders the percentile summary.
func (p Percentiles) String() string {
	return fmt.Sprintf("p50=%.3f p90=%.3f p99=%.3f max=%.3f", p.P50, p.P90, p.P99, p.Max)
}
