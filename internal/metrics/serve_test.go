package metrics

import (
	"strings"
	"testing"
)

func TestServeStatsCountersAndInvariant(t *testing.T) {
	s := NewServeStats(3)
	s.Submitted = 5
	s.NoteAdmit(0, 100)
	s.NoteAdmit(2, 300)
	s.NoteAdmit(2, 200)
	s.NoteReject("rate-limit", 400)
	s.NoteReject("no-edge", 50)
	if s.Admitted != 3 || s.RejectedTotal() != 2 || s.Decisions() != 5 {
		t.Fatalf("admitted=%d rejected=%d decisions=%d", s.Admitted, s.RejectedTotal(), s.Decisions())
	}
	if s.Submitted != s.Admitted+s.RejectedTotal() {
		t.Fatal("accounting invariant broken")
	}
	if s.RoutedByEdge[0] != 1 || s.RoutedByEdge[1] != 0 || s.RoutedByEdge[2] != 2 {
		t.Fatalf("routed-by-edge %v", s.RoutedByEdge)
	}
	if s.MaxStaleNS != 400 {
		t.Fatalf("max stale %d, want 400", s.MaxStaleNS)
	}
	s.NoteReplan(false)
	s.NoteReplan(true)
	if s.Replans != 2 || s.ForcedReplans != 1 {
		t.Fatalf("replans %d forced %d", s.Replans, s.ForcedReplans)
	}
	// Out-of-range edge must not panic or corrupt the counters.
	s.NoteAdmit(99, 0)
	if s.Admitted != 4 {
		t.Fatalf("out-of-range admit lost: %d", s.Admitted)
	}
}

func TestServeStatsQuantiles(t *testing.T) {
	s := NewServeStats(1)
	if s.StaleQuantileNS(0.5) != 0 {
		t.Fatal("empty quantile not zero")
	}
	// Insert 1..100ns out of order; nearest-rank must sort internally.
	for _, v := range []int64{70, 10, 100, 40, 20, 90, 30, 60, 50, 80} {
		s.noteStale(v)
	}
	if got := s.StaleQuantileNS(0.5); got != 50 {
		t.Fatalf("p50 = %d, want 50", got)
	}
	if got := s.StaleQuantileNS(1.0); got != 100 {
		t.Fatalf("p100 = %d, want 100", got)
	}
	if got := s.StaleQuantileNS(0.01); got != 10 {
		t.Fatalf("p1 clamps to first sample, got %d", got)
	}
	// Negative samples clamp to zero.
	s2 := NewServeStats(1)
	s2.noteStale(-5)
	if s2.MaxStaleNS != 0 || s2.StaleQuantileNS(1) != 0 {
		t.Fatal("negative staleness not clamped")
	}
}

func TestServeStatsCloneIsIndependent(t *testing.T) {
	s := NewServeStats(2)
	s.Submitted = 2
	s.NoteAdmit(1, 10)
	s.NoteReject("rate-limit", 20)
	cp := s.Clone()
	s.NoteAdmit(0, 999)
	s.NoteReject("rate-limit", 999)
	s.Rejected["no-edge"] = 7
	if cp.Admitted != 1 || cp.RejectedTotal() != 1 || cp.MaxStaleNS != 20 {
		t.Fatalf("clone mutated by later writes: %+v", cp)
	}
	if cp.RoutedByEdge[0] != 0 || cp.StaleQuantileNS(1) != 20 {
		t.Fatal("clone shares backing slices with the original")
	}
}

func TestServeStatsStringDeterministic(t *testing.T) {
	build := func(order []string) string {
		s := NewServeStats(1)
		for _, r := range order {
			s.NoteReject(r, 0)
		}
		s.Submitted = int64(len(order))
		return s.String()
	}
	a := build([]string{"no-edge", "rate-limit", "bad-request"})
	b := build([]string{"rate-limit", "bad-request", "no-edge"})
	if a != b {
		t.Fatalf("String depends on insertion order:\n%s\n%s", a, b)
	}
	if !strings.Contains(a, "bad-request=1 no-edge=1 rate-limit=1") {
		t.Fatalf("reasons not sorted: %s", a)
	}
}
