// Package metrics provides the evaluation statistics the paper reports:
// completion-time CDFs (Fig. 6a/7a), per-slot and cumulative inference loss
// (Fig. 6b/c, 7b/c), and the SLO failure rate p%.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"unicode/utf8"
)

// CDF is an empirical cumulative distribution over float64 samples.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from samples (copied and sorted).
func NewCDF(samples []float64) *CDF {
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// At returns P[X ≤ x].
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile (q in [0, 1]) by nearest-rank.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	i := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return c.sorted[i]
}

// N returns the sample count.
func (c *CDF) N() int { return len(c.sorted) }

// Series evaluates the CDF on an even grid over [lo, hi] with n points,
// returning (xs, ys) ready for plotting or table rendering.
func (c *CDF) Series(lo, hi float64, n int) (xs, ys []float64) {
	if n < 2 {
		n = 2
	}
	xs = make([]float64, n)
	ys = make([]float64, n)
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		xs[i] = x
		ys[i] = c.At(x)
	}
	return xs, ys
}

// FailureRate returns the fraction of samples strictly exceeding the SLO
// threshold — the paper's p% with thresh = 1.0 (completion time normalized
// by the slot).
func FailureRate(samples []float64, thresh float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	fail := 0
	for _, v := range samples {
		if v > thresh {
			fail++
		}
	}
	return float64(fail) / float64(len(samples))
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	var s float64
	for _, v := range samples {
		s += v
	}
	return s / float64(len(samples))
}

// LossAccumulator tracks per-slot and cumulative inference loss, the
// quantities plotted in Fig. 6b/6c and 7b/7c.
type LossAccumulator struct {
	perSlot []float64
	cum     []float64
	total   float64
}

// Add records the loss of one slot.
func (a *LossAccumulator) Add(slotLoss float64) {
	a.total += slotLoss
	a.perSlot = append(a.perSlot, slotLoss)
	a.cum = append(a.cum, a.total)
}

// PerSlot returns the per-slot loss series (aliased; do not mutate).
func (a *LossAccumulator) PerSlot() []float64 { return a.perSlot }

// Cumulative returns the running-total series (aliased; do not mutate).
func (a *LossAccumulator) Cumulative() []float64 { return a.cum }

// Total returns the cumulative loss so far.
func (a *LossAccumulator) Total() float64 { return a.total }

// Slots returns the number of recorded slots.
func (a *LossAccumulator) Slots() int { return len(a.perSlot) }

// Table renders a fixed-width text table: one row per entry, columns padded
// to the widest cell. Used by the experiment binaries to print the
// tables/figure series the paper reports.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values.
func (t *Table) AddRowf(format string, cells ...interface{}) {
	parts := make([]string, len(cells))
	for i, c := range cells {
		parts[i] = fmt.Sprintf(format, c)
	}
	t.AddRow(parts...)
}

// String renders the table. Cell widths are measured in runes so unicode
// content (η, ≈, τ, sparklines) stays aligned.
func (t *Table) String() string {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = utf8.RuneCountInString(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if n := utf8.RuneCountInString(c); n > width[i] {
				width[i] = n
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", width[i]-utf8.RuneCountInString(c)))
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	total := len(t.header)*2 - 2
	for _, w := range width {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
