package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// ServeStats aggregates the online serving layer's observability counters:
// admission outcomes, per-edge routing volume, snapshot swaps, and the
// snapshot-staleness distribution observed at decision time. Every request
// offered to the serving loop lands in exactly one of Admitted or Rejected
// (by reason), so Submitted == Admitted + RejectedTotal() is an invariant
// the smoke tier asserts — nothing is dropped on the floor unaccounted.
//
// All times are virtual nanoseconds from the serving loop's deterministic
// clock; the wall clock never feeds these fields (dettaint enforces that:
// ServeStats is a *Stats sink type).
type ServeStats struct {
	// Submitted counts every request offered to the loop.
	Submitted int64 `json:"submitted"`
	// Admitted counts requests that passed admission and were routed.
	Admitted int64 `json:"admitted"`
	// Rejected counts shed requests by reason ("rate-limit", "no-edge",
	// "bad-request", ...).
	Rejected map[string]int64 `json:"rejected,omitempty"`
	// RoutedByEdge[k] counts admitted requests dispatched to edge k.
	RoutedByEdge []int64 `json:"routed_by_edge"`
	// Replans counts snapshot swaps (re-optimizations adopted);
	// ForcedReplans is the subset run synchronously because a decision
	// would otherwise have read a snapshot older than the staleness bound.
	Replans       int64 `json:"replans"`
	ForcedReplans int64 `json:"forced_replans"`
	// ReplanErrors counts re-optimizations that failed (the previous
	// snapshot stays installed; serving continues).
	ReplanErrors int64 `json:"replan_errors,omitempty"`
	// MaxStaleNS is the largest snapshot staleness observed at any decision.
	MaxStaleNS int64 `json:"max_stale_ns"`

	staleNS []int64 // per-decision staleness samples
}

// NewServeStats sizes the per-edge counters for a K-edge cluster.
func NewServeStats(edges int) *ServeStats {
	return &ServeStats{
		Rejected:     map[string]int64{},
		RoutedByEdge: make([]int64, edges),
	}
}

// NoteAdmit records an admitted request routed to edge at the given
// snapshot staleness.
func (s *ServeStats) NoteAdmit(edge int, staleNS int64) {
	s.Admitted++
	if edge >= 0 && edge < len(s.RoutedByEdge) {
		s.RoutedByEdge[edge]++
	}
	s.noteStale(staleNS)
}

// NoteReject records a shed request with its reason.
func (s *ServeStats) NoteReject(reason string, staleNS int64) {
	if s.Rejected == nil {
		s.Rejected = map[string]int64{}
	}
	s.Rejected[reason]++
	s.noteStale(staleNS)
}

func (s *ServeStats) noteStale(ns int64) {
	if ns < 0 {
		ns = 0
	}
	if ns > s.MaxStaleNS {
		s.MaxStaleNS = ns
	}
	s.staleNS = append(s.staleNS, ns)
}

// NoteReplan records a snapshot swap.
func (s *ServeStats) NoteReplan(forced bool) {
	s.Replans++
	if forced {
		s.ForcedReplans++
	}
}

// RejectedTotal sums the per-reason reject counters.
func (s *ServeStats) RejectedTotal() int64 {
	var n int64
	for _, v := range s.Rejected { // integer sum: order-independent
		n += v
	}
	return n
}

// Decisions is the number of requests decided (admitted or rejected).
func (s *ServeStats) Decisions() int64 { return s.Admitted + s.RejectedTotal() }

// StaleQuantileNS returns the q-th nearest-rank quantile of the staleness
// samples (0 when no decisions were recorded).
func (s *ServeStats) StaleQuantileNS(q float64) int64 {
	if len(s.staleNS) == 0 {
		return 0
	}
	sorted := append([]int64(nil), s.staleNS...)
	// Equal int64 keys are interchangeable, so a stable sort yields a total
	// deterministic order regardless of sample arrival interleaving.
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(float64(len(sorted))*q) - 1
	if q >= 1 {
		i = len(sorted) - 1
	}
	if i < 0 {
		i = 0
	}
	return sorted[i]
}

// Clone deep-copies the stats so a live serving loop can publish a
// consistent snapshot while decisions continue.
func (s *ServeStats) Clone() *ServeStats {
	cp := *s
	cp.Rejected = make(map[string]int64, len(s.Rejected))
	for k, v := range s.Rejected { // map→map copy: order cannot leak
		cp.Rejected[k] = v
	}
	cp.RoutedByEdge = append([]int64(nil), s.RoutedByEdge...)
	cp.staleNS = append([]int64(nil), s.staleNS...)
	return &cp
}

// String renders the counters deterministically (reject reasons sorted).
func (s *ServeStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "submitted %d admitted %d rejected %d", s.Submitted, s.Admitted, s.RejectedTotal())
	reasons := make([]string, 0, len(s.Rejected))
	for r := range s.Rejected {
		reasons = append(reasons, r)
	}
	sort.Strings(reasons)
	for _, r := range reasons {
		fmt.Fprintf(&b, " %s=%d", r, s.Rejected[r])
	}
	fmt.Fprintf(&b, " replans %d (forced %d) stale p50/p99/max %.1f/%.1f/%.1fms",
		s.Replans, s.ForcedReplans,
		float64(s.StaleQuantileNS(0.5))/1e6, float64(s.StaleQuantileNS(0.99))/1e6,
		float64(s.MaxStaleNS)/1e6)
	return b.String()
}
