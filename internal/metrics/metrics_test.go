package metrics

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{3, 1, 2, 4})
	if c.N() != 4 {
		t.Fatalf("N = %d", c.N())
	}
	if got := c.At(0); got != 0 {
		t.Fatalf("At(0) = %v", got)
	}
	if got := c.At(2); got != 0.5 {
		t.Fatalf("At(2) = %v, want 0.5", got)
	}
	if got := c.At(4); got != 1 {
		t.Fatalf("At(4) = %v, want 1", got)
	}
	if got := c.At(2.5); got != 0.5 {
		t.Fatalf("At(2.5) = %v, want 0.5", got)
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.At(1) != 0 {
		t.Fatal("empty CDF should be 0 everywhere")
	}
	if !math.IsNaN(c.Quantile(0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
}

func TestCDFDoesNotAliasInput(t *testing.T) {
	in := []float64{3, 1, 2}
	c := NewCDF(in)
	in[0] = -100
	if c.At(0) != 0 {
		t.Fatal("CDF must copy its input")
	}
}

func TestQuantile(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40, 50})
	if got := c.Quantile(0.5); got != 30 {
		t.Fatalf("median = %v, want 30", got)
	}
	if got := c.Quantile(0); got != 10 {
		t.Fatalf("Q0 = %v, want 10", got)
	}
	if got := c.Quantile(1); got != 50 {
		t.Fatalf("Q1 = %v, want 50", got)
	}
	if got := c.Quantile(0.2); got != 10 {
		t.Fatalf("Q0.2 = %v, want 10", got)
	}
}

func TestSeries(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3})
	xs, ys := c.Series(0, 3, 4)
	if len(xs) != 4 || len(ys) != 4 {
		t.Fatal("series length wrong")
	}
	if xs[0] != 0 || xs[3] != 3 {
		t.Fatalf("xs = %v", xs)
	}
	if ys[0] != 0 || ys[3] != 1 {
		t.Fatalf("ys = %v", ys)
	}
	// Degenerate n handled.
	xs, _ = c.Series(0, 1, 1)
	if len(xs) != 2 {
		t.Fatal("n<2 must clamp to 2")
	}
}

func TestFailureRate(t *testing.T) {
	s := []float64{0.5, 0.9, 1.0, 1.1, 2.0}
	if got := FailureRate(s, 1.0); got != 0.4 {
		t.Fatalf("failure rate = %v, want 0.4 (1.0 itself meets the SLO)", got)
	}
	if got := FailureRate(nil, 1.0); got != 0 {
		t.Fatalf("empty failure rate = %v", got)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("empty mean = %v", got)
	}
}

func TestLossAccumulator(t *testing.T) {
	var a LossAccumulator
	a.Add(1)
	a.Add(2)
	a.Add(3)
	if a.Total() != 6 || a.Slots() != 3 {
		t.Fatalf("total = %v slots = %d", a.Total(), a.Slots())
	}
	want := []float64{1, 3, 6}
	for i, v := range a.Cumulative() {
		if v != want[i] {
			t.Fatalf("cumulative = %v", a.Cumulative())
		}
	}
	if a.PerSlot()[1] != 2 {
		t.Fatalf("per-slot = %v", a.PerSlot())
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("a-very-long-name", "2")
	tb.AddRow("short") // padded
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("expected header + rule + 3 rows, got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Fatalf("header missing: %q", lines[0])
	}
	if !strings.Contains(lines[2], "alpha") {
		t.Fatalf("row missing: %q", lines[2])
	}
	// All data lines padded to equal width.
	if len(lines[2]) != len(lines[3]) {
		t.Fatalf("rows not aligned: %d vs %d", len(lines[2]), len(lines[3]))
	}
}

func TestTableAddRowf(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRowf("%.2f", 1.234, 5.678)
	if !strings.Contains(tb.String(), "1.23") {
		t.Fatal("AddRowf formatting missing")
	}
}

// Property: CDF is monotone nondecreasing and At(max) == 1.
func TestQuickCDFMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		s := make([]float64, n)
		for i := range s {
			s[i] = rng.NormFloat64() * 10
		}
		c := NewCDF(s)
		sorted := append([]float64(nil), s...)
		sort.Float64s(sorted)
		prev := 0.0
		for x := sorted[0] - 1; x <= sorted[n-1]+1; x += 0.25 {
			v := c.At(x)
			if v < prev {
				return false
			}
			prev = v
		}
		return c.At(sorted[n-1]) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Quantile and At are (approximately) inverse.
func TestQuickQuantileAtInverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		s := make([]float64, n)
		for i := range s {
			s[i] = rng.Float64() * 100
		}
		c := NewCDF(s)
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
			x := c.Quantile(q)
			if c.At(x) < q-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTableUnicodeAlignment(t *testing.T) {
	tb := NewTable("name", "val")
	tb.AddRow("η≈τβ", "1")
	tb.AddRow("ascii", "2")
	lines := strings.Split(strings.TrimRight(tb.String(), "\n"), "\n")
	// Both data rows must have the same rune width.
	w2 := len([]rune(lines[2]))
	w3 := len([]rune(lines[3]))
	if w2 != w3 {
		t.Fatalf("unicode row width %d != ascii row width %d:\n%s", w2, w3, tb.String())
	}
}
