package par

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersDefaults(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d", got)
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
}

func TestTwoLevelSplitsBudget(t *testing.T) {
	cases := []struct {
		workers, n, outer int
		inner             []int // expected inner width per item (nil = all 1)
	}{
		{workers: 8, n: 3, outer: 3, inner: []int{3, 3, 2}},
		{workers: 4, n: 4, outer: 4},
		{workers: 4, n: 8, outer: 4},
		{workers: 1, n: 5, outer: 1},
		{workers: 0, n: 5, outer: 1}, // unresolved budget degrades to serial
		{workers: 6, n: 1, outer: 1, inner: []int{6}},
		{workers: 5, n: 2, outer: 2, inner: []int{3, 2}},
	}
	for _, tc := range cases {
		outer, inner := TwoLevel(tc.workers, tc.n)
		if outer != tc.outer {
			t.Errorf("TwoLevel(%d, %d): outer = %d, want %d", tc.workers, tc.n, outer, tc.outer)
		}
		total := 0
		for idx := 0; idx < tc.n; idx++ {
			w := inner(idx)
			if w < 1 {
				t.Errorf("TwoLevel(%d, %d): inner(%d) = %d, must be ≥ 1", tc.workers, tc.n, idx, w)
			}
			want := 1
			if tc.inner != nil {
				want = tc.inner[idx]
			}
			if w != want {
				t.Errorf("TwoLevel(%d, %d): inner(%d) = %d, want %d", tc.workers, tc.n, idx, w, want)
			}
			total += w
		}
		// No stranded workers: when items are scarcer than workers, the inner
		// widths must spend the entire budget (the workers/n bug this replaces
		// stranded the remainder).
		if want := tc.workers; want >= 1 && tc.n < want && total != want {
			t.Errorf("TwoLevel(%d, %d): inner widths sum to %d, want %d", tc.workers, tc.n, total, want)
		}
	}
	if outer, _ := TwoLevel(4, 0); outer != 0 {
		t.Errorf("TwoLevel(4, 0): outer = %d, want 0", outer)
	}
}

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		n := 57
		hits := make([]int32, n)
		err := ForEach(workers, n, func(_, i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	e3 := errors.New("three")
	e9 := errors.New("nine")
	err := ForEach(4, 20, func(_, i int) error {
		switch i {
		case 9:
			return e9
		case 3:
			return e3
		}
		return nil
	})
	if err != e3 {
		t.Fatalf("err = %v, want the lowest-index error %v", err, e3)
	}
}

func TestForEachWorkerIDsAreInRange(t *testing.T) {
	workers := 4
	var bad int32
	err := ForEach(workers, 200, func(w, _ int) error {
		if w < 0 || w >= workers {
			atomic.AddInt32(&bad, 1)
		}
		return nil
	})
	if err != nil || bad != 0 {
		t.Fatalf("err=%v, %d out-of-range worker ids", err, bad)
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(4, 0, func(_, _ int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}
