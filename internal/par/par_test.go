package par

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersDefaults(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d", got)
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
}

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		n := 57
		hits := make([]int32, n)
		err := ForEach(workers, n, func(_, i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	e3 := errors.New("three")
	e9 := errors.New("nine")
	err := ForEach(4, 20, func(_, i int) error {
		switch i {
		case 9:
			return e9
		case 3:
			return e3
		}
		return nil
	})
	if err != e3 {
		t.Fatalf("err = %v, want the lowest-index error %v", err, e3)
	}
}

func TestForEachWorkerIDsAreInRange(t *testing.T) {
	workers := 4
	var bad int32
	err := ForEach(workers, 200, func(w, _ int) error {
		if w < 0 || w >= workers {
			atomic.AddInt32(&bad, 1)
		}
		return nil
	})
	if err != nil || bad != 0 {
		t.Fatalf("err=%v, %d out-of-range worker ids", err, bad)
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(4, 0, func(_, _ int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}
