// Package par provides the bounded deterministic worker pools used by the
// parallel solve engine: the per-edge stage-2 fan-out in core, the
// batch-synchronous branch-and-bound in miqp, and the experiment sweep
// runners. The contract every caller relies on is that parallelism never
// changes results — work items write into caller-owned per-index slots, the
// reported error is the one from the lowest-indexed failing item, and worker
// count only affects wall-clock time.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a configured worker count: values ≤ 0 mean "one worker per
// available CPU" (runtime.GOMAXPROCS(0)).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// CapWorkers resolves a configured worker count like Workers and additionally
// caps it at runtime.GOMAXPROCS(0): a pool wider than the schedulable CPUs
// cannot run anything concurrently and only pays goroutine and merge overhead
// (the fig7 workers=4 regression on a 1-CPU host). Capping the pool never
// changes results — the deterministic engines' work order is independent of
// pool width — so it is safe on every call site that dispatches CPU-bound
// items.
func CapWorkers(n int) int {
	w := Workers(n)
	if g := runtime.GOMAXPROCS(0); w > g {
		return g
	}
	return w
}

// TwoLevel deterministically splits a worker budget across a two-level solve:
// an outer fan-out of n independent items, each of which can itself use inner
// workers (e.g. concurrent per-edge MILPs whose branch & bound is internally
// parallel, or concurrent scheduling domains that fan out again over their
// edges). The outer level gets min(workers, n) concurrent slots; when n <
// workers the leftover capacity is dealt to the inner level by item index, so
// any moment's running items use Σ inner(idx) = workers workers in total. When
// n ≥ workers every concurrent outer slot is already backed by one CPU and
// inner parallelism would only oversubscribe, so inner(idx) = 1.
//
// This replaces the workers/n division, which had two failure modes: with
// n ≥ workers it was merely redundant, but with n < workers it stranded the
// workers − n·(workers/n) remainder entirely, and with workers < n it starved
// the inner level to 1 while the outer level could not use the width either.
//
// The split is a pure function of (workers, n, idx) — it never reads runtime
// state — and both levels' engines are worker-count invariant, so the
// allocation affects wall-clock time only, never results. workers should
// already be resolved (Workers/CapWorkers); n == 0 returns (0, inner≡1).
func TwoLevel(workers, n int) (outer int, inner func(idx int) int) {
	if workers < 1 {
		workers = 1
	}
	if n <= 0 {
		return 0, func(int) int { return 1 }
	}
	if n >= workers {
		return workers, func(int) int { return 1 }
	}
	base, rem := workers/n, workers%n
	return n, func(idx int) int {
		if idx < rem {
			return base + 1
		}
		return base
	}
}

// ForEach runs fn(worker, i) for every i in [0, n) on up to workers
// concurrent goroutines and returns the error of the lowest index that
// failed (nil when none fail). worker ∈ [0, effective workers) is stable for
// the lifetime of one goroutine, so callers can hand each worker its own
// scratch storage. Items are claimed dynamically (work stealing via an atomic
// counter), so uneven item costs still balance across workers.
//
// With workers ≤ 1 (or n ≤ 1) the items run inline on the calling goroutine
// in index order, stopping at the first error — the serial path allocates
// nothing and is exactly the loop it replaces.
func ForEach(workers, n int, fn func(worker, i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
