// Command birpsim runs one scheduler against a synthetic workload on the
// simulated edge collaborative system and prints the evaluation metrics.
//
// Usage:
//
//	birpsim -alg birp -apps 5 -versions 5 -slots 288 -mean 31
//	birpsim -alg oaei -small -slots 100
package main

import (
	"flag"
	"fmt"
	"os"

	birp "repro"
)

// verboseScheduler prints every plan it passes through.
type verboseScheduler struct {
	birp.Scheduler
	c    *birp.Cluster
	apps []*birp.Application
}

func (v *verboseScheduler) Decide(t int, arrivals [][]int) (*birp.Plan, error) {
	plan, err := v.Scheduler.Decide(t, arrivals)
	if plan != nil {
		fmt.Printf("--- slot %d ---\n%s", t, plan.Summary(v.c, v.apps))
	}
	return plan, err
}

func main() {
	alg := flag.String("alg", "birp", "scheduler: birp, birpoff, oaei, max, or all (comparison table)")
	small := flag.Bool("small", false, "use the 3-edge small-scale cluster")
	apps := flag.Int("apps", 5, "number of applications")
	versions := flag.Int("versions", 5, "model versions per application")
	slots := flag.Int("slots", 288, "slots to simulate")
	mean := flag.Float64("mean", 31, "mean requests per (app, edge) per slot")
	seed := flag.Int64("seed", 1, "trace and noise seed")
	noise := flag.Float64("noise", 0.02, "relative execution-time noise")
	traceIn := flag.String("trace-in", "", "replay a saved trace instead of generating one")
	traceOut := flag.String("trace-out", "", "save the generated trace for later replay")
	verbose := flag.Bool("verbose", false, "print each slot's plan (deployments, transfers, drops)")
	flag.Parse()

	c := birp.DefaultCluster()
	if *small {
		c = birp.SmallCluster()
	}
	catalogue := birp.Catalogue(*apps, *versions)

	opt := birp.SchedulerOptions{Seed: *seed}
	mk := func(name string) (birp.Scheduler, error) {
		switch name {
		case "birp":
			return birp.NewBIRP(c, catalogue, opt)
		case "birpoff":
			return birp.NewBIRPOff(c, catalogue, opt)
		case "oaei":
			return birp.NewOAEI(c, catalogue, opt)
		case "max":
			return birp.NewMAX(c, catalogue, opt)
		}
		return nil, fmt.Errorf("unknown algorithm %q", name)
	}
	var sched birp.Scheduler
	var err error
	if *alg != "all" {
		sched, err = mk(*alg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	var tr *birp.Trace
	if *traceIn != "" {
		f, err := os.Open(*traceIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tr, err = birp.LoadTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if tr.Apps != *apps || tr.Edges != c.N() {
			fmt.Fprintf(os.Stderr, "trace shape %d apps x %d edges does not match -apps/-small\n",
				tr.Apps, tr.Edges)
			os.Exit(2)
		}
		*slots = tr.Slots
	} else {
		var err error
		tr, err = birp.GenerateTrace(birp.TraceConfig{
			Apps: *apps, Edges: c.N(), Slots: *slots, Seed: *seed,
			MeanPerSlot: *mean, Imbalance: 0.8, BurstProb: 0.05, BurstScale: 2,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := tr.Save(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		st := tr.Summarize()
		fmt.Printf("trace saved to %s (%d requests, peak slot %d, mean imbalance %.2f)\n",
			*traceOut, st.Total, st.PeakSlotTotal, st.MeanImbalance)
	}
	if *verbose {
		sched = &verboseScheduler{Scheduler: sched, c: c, apps: catalogue}
	}
	if *alg == "all" {
		fmt.Printf("%-9s %12s %8s %9s %9s\n", "algorithm", "loss", "p%", "dropped", "energy kJ")
		for _, name := range []string{"birp", "birpoff", "oaei", "max"} {
			s2, err := mk(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			sim, err := birp.NewSimulator(c, catalogue, *noise, *seed)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			res, err := sim.Run(s2, tr.R)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("%-9s %12.1f %7.2f%% %9d %9.1f\n", res.Scheduler,
				res.Loss.Total(), 100*res.FailureRate(), res.Dropped, res.EnergyJ/1000)
		}
		return
	}
	sim, err := birp.NewSimulator(c, catalogue, *noise, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res, err := sim.Run(sched, tr.R)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("algorithm        %s\n", res.Scheduler)
	fmt.Printf("edges/apps       %d / %d (x%d versions)\n", c.N(), *apps, *versions)
	fmt.Printf("slots            %d (slot = %.0fs)\n", *slots, c.SlotSeconds)
	fmt.Printf("requests served  %d (dropped %d)\n", res.Served, res.Dropped)
	fmt.Printf("total loss       %.1f\n", res.Loss.Total())
	fmt.Printf("SLO failures p%%  %.2f%%\n", 100*res.FailureRate())
	if len(res.Violations) > 0 {
		fmt.Printf("plan violations  %d (first: %s)\n", len(res.Violations), res.Violations[0])
	}
}
