// Command birpserve is the online serving daemon: a continuous request
// stream passes token-bucket admission and a pluggable router dispatching
// against an immutable snapshot of the last BIRP plan, while the slot
// optimizer re-solves over the rolling arrival window in the background
// and atomically swaps the snapshot.
//
// Two modes:
//
//	birpserve -gen 10000 -policy token-bucket -rate 8 -log decisions.log
//	    replay: generate a scripted request stream from the synthetic
//	    trace and drive it through the loop on the virtual clock —
//	    fully deterministic, byte-identical decision log for every
//	    -workers value.
//
//	birpserve -listen 127.0.0.1:7800
//	    daemon: serve the JSON-lines TCP protocol ({"id","app","region"}
//	    per line in, {"id","admit","edge","reason"} per line out) until
//	    SIGINT/SIGTERM; a background re-optimizer keeps snapshots fresh.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	birp "repro"
	"repro/internal/cliutil"
)

// serveOutput is the machine-readable counters summary (-json). All
// staleness figures are virtual-clock milliseconds; WallSeconds and
// AdmittedPerSec are wall-clock pipeline throughput, reported for bench
// trending only — no decision depends on them.
type serveOutput struct {
	Mode             string           `json:"mode"`
	Workers          int              `json:"workers"`
	Seed             int64            `json:"seed"`
	Policy           string           `json:"policy"`
	Route            string           `json:"route"`
	Submitted        int64            `json:"submitted"`
	Admitted         int64            `json:"admitted"`
	Rejected         int64            `json:"rejected"`
	RejectedByReason map[string]int64 `json:"rejected_by_reason,omitempty"`
	RoutedByEdge     []int64          `json:"routed_by_edge"`
	Replans          int64            `json:"replans"`
	ForcedReplans    int64            `json:"forced_replans"`
	StaleP50MS       float64          `json:"stale_p50_ms"`
	StaleP90MS       float64          `json:"stale_p90_ms"`
	StaleP99MS       float64          `json:"stale_p99_ms"`
	StaleMaxMS       float64          `json:"stale_max_ms"`
	StaleBoundMS     float64          `json:"stale_bound_ms"`
	WallSeconds      float64          `json:"wall_seconds"`
	AdmittedPerSec   float64          `json:"admitted_per_sec"`
}

func main() {
	listen := flag.String("listen", "", "daemon mode: serve the JSON-lines TCP protocol on this address (empty = replay mode)")
	gen := flag.Int("gen", 10000, "replay mode: number of scripted requests to generate from the synthetic trace")
	seed := flag.Int64("seed", 1, "workload seed")
	small := flag.Bool("small", true, "use the 3-edge small-scale cluster (false = the 6-edge testbed)")
	apps := flag.Int("apps", 2, "number of applications")
	versions := flag.Int("versions", 3, "model versions per application")
	policy := flag.String("policy", "always", "admission policy: always or token-bucket")
	capacity := flag.Float64("cap", 64, "token-bucket burst capacity in tokens (>= 1)")
	rate := flag.Float64("rate", 32, "token-bucket refill rate in tokens per virtual second (> 0)")
	route := flag.String("route", "round-robin", "router: round-robin, least-loaded, or affinity")
	reoptMS := flag.Int("reopt-ms", 0, "re-optimization cadence in virtual ms (0 = one slot)")
	staleMS := flag.Int("stale-ms", 0, "snapshot staleness bound in virtual ms (0 = 2x the cadence); a decision about to exceed it forces a synchronous re-solve")
	workers := flag.Int("workers", 0, "planner solve parallelism (0 = one worker per CPU); decisions are identical for every value")
	noReuse := flag.Bool("noreuse", false, "disable cross-slot solver reuse; every re-optimization solves cold")
	logPath := flag.String("log", "", "write the canonical decision log to this file")
	jsonPath := flag.String("json", "", "write machine-readable counters (JSON) to this file")
	flag.Parse()

	check := &cliutil.Checker{}
	check.OneOf("policy", *policy, "always", "token-bucket")
	check.OneOf("route", *route, "round-robin", "least-loaded", "affinity")
	check.PositiveInt("apps", *apps)
	check.PositiveInt("versions", *versions)
	check.NonNegativeInt("workers", *workers)
	check.NonNegativeInt("reopt-ms", *reoptMS)
	check.NonNegativeInt("stale-ms", *staleMS)
	if *policy == "token-bucket" {
		check.Checkf(*capacity >= 1, "-cap %g: must be >= 1", *capacity)
		check.PositiveFloat("rate", *rate)
	}
	if *listen == "" {
		check.PositiveInt("gen", *gen)
	}
	if err := check.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	c := birp.DefaultCluster()
	if *small {
		c = birp.SmallCluster()
	}
	catalogue := birp.Catalogue(*apps, *versions)
	sched, err := birp.NewBIRP(c, catalogue, birp.SchedulerOptions{
		Workers: *workers, DisableSlotReuse: *noReuse,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	slotNS := int64(c.SlotMS()) * 1e6
	reoptNS := int64(*reoptMS) * 1e6
	if reoptNS == 0 {
		reoptNS = slotNS
	}
	var logFile *os.File
	if *logPath != "" {
		logFile, err = os.Create(*logPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer logFile.Close()
	}
	cfg := birp.ServeConfig{
		Apps: *apps, Edges: c.N(),
		Planner:      birp.ServePlannerFor(sched),
		ReoptEveryNS: reoptNS,
		MaxStaleNS:   int64(*staleMS) * 1e6,
	}
	if logFile != nil {
		cfg.Log = logFile
	}
	if cfg.Admission, err = birp.NewServeAdmission(*policy, *capacity, *rate); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if cfg.Router, err = birp.NewServeRouter(*route); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	loop, err := birp.NewServeLoop(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	boundNS := int64(*staleMS) * 1e6
	if boundNS == 0 {
		boundNS = 2 * reoptNS
	}
	mode := "replay"
	start := time.Now()
	if *listen == "" {
		script, err := genScript(c.N(), *apps, *seed, slotNS, *gen)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if _, err := loop.Replay(script); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		mode = "daemon"
		if err := runDaemon(loop, *listen, reoptNS); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	wall := time.Since(start).Seconds()

	stats := loop.Stats()
	out := serveOutput{
		Mode: mode, Workers: *workers, Seed: *seed, Policy: *policy, Route: *route,
		Submitted: stats.Submitted, Admitted: stats.Admitted, Rejected: stats.RejectedTotal(),
		RejectedByReason: stats.Rejected, RoutedByEdge: stats.RoutedByEdge,
		Replans: stats.Replans, ForcedReplans: stats.ForcedReplans,
		StaleP50MS:   float64(stats.StaleQuantileNS(0.5)) / 1e6,
		StaleP90MS:   float64(stats.StaleQuantileNS(0.9)) / 1e6,
		StaleP99MS:   float64(stats.StaleQuantileNS(0.99)) / 1e6,
		StaleMaxMS:   float64(stats.MaxStaleNS) / 1e6,
		StaleBoundMS: float64(boundNS) / 1e6,
		WallSeconds:  wall,
	}
	if wall > 0 {
		out.AdmittedPerSec = float64(stats.Admitted) / wall
	}
	fmt.Printf("%s: %s\n", mode, stats)
	if stats.Submitted != stats.Admitted+stats.RejectedTotal() {
		fmt.Fprintf(os.Stderr, "accounting violation: submitted %d != admitted %d + rejected %d\n",
			stats.Submitted, stats.Admitted, stats.RejectedTotal())
		os.Exit(1)
	}
	if mode == "replay" && stats.MaxStaleNS > boundNS {
		fmt.Fprintf(os.Stderr, "staleness violation: max %.1fms > bound %.1fms\n",
			float64(stats.MaxStaleNS)/1e6, float64(boundNS)/1e6)
		os.Exit(1)
	}
	if *jsonPath != "" {
		buf, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// genScript builds a deterministic request script from the synthetic trace
// generator: slot t's arrivals for (app i, edge k) are spread evenly over
// the slot's virtual duration in (i, k) order, so the stream is
// non-decreasing in time and identical for a given seed. The trace wraps
// if n exceeds one generation.
func genScript(edges, apps int, seed, slotNS int64, n int) ([]birp.ServeRequest, error) {
	tcfg := birp.DefaultTraceConfig()
	tcfg.Apps = apps
	tcfg.Edges = edges
	tcfg.Seed = seed
	tr, err := birp.GenerateTrace(tcfg)
	if err != nil {
		return nil, err
	}
	script := make([]birp.ServeRequest, 0, n)
	id := int64(0)
	for t := 0; len(script) < n; t++ {
		slot := tr.R[t%tr.Slots]
		total := 0
		for i := range slot {
			for _, v := range slot[i] {
				total += v
			}
		}
		if total == 0 {
			if t > tr.Slots && id == 0 {
				return nil, fmt.Errorf("birpserve: trace generated no arrivals")
			}
			continue
		}
		j := 0
		for i := range slot {
			for k, v := range slot[i] {
				for q := 0; q < v; q++ {
					if len(script) >= n {
						return script, nil
					}
					script = append(script, birp.ServeRequest{
						ID: id, App: i, Region: k,
						ArriveNS: int64(t)*slotNS + int64(j)*slotNS/int64(total),
					})
					id++
					j++
				}
			}
		}
	}
	return script, nil
}

// runDaemon serves the TCP protocol until SIGINT/SIGTERM. Wall time is
// mapped onto the virtual clock once at the process edge (nanoseconds
// since daemon start); a background re-optimizer ticks the loop so
// snapshots stay fresh even when no requests arrive.
func runDaemon(loop *birp.ServeLoop, addr string, reoptNS int64) error {
	epoch := time.Now()
	now := func() int64 { return time.Since(epoch).Nanoseconds() }
	fe, err := birp.NewServeFrontend(loop, addr, now)
	if err != nil {
		return err
	}
	fmt.Printf("serving on %s (SIGINT for clean shutdown)\n", fe.Addr())

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(time.Duration(reoptNS) * time.Nanosecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				//birplint:ignore sharedwrite // Loop is concurrency-safe by contract: Tick and the frontend's Decide serialize on the loop's internal mutex
				if err := loop.Tick(now()); err != nil {
					fmt.Fprintf(os.Stderr, "replan: %v\n", err)
				}
			}
		}
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	<-sigc
	signal.Stop(sigc)
	close(stop)
	<-done
	if err := fe.Close(); err != nil {
		return err
	}
	return loop.Flush()
}
