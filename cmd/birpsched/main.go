// Command birpsched runs the distributed prototype's scheduler server: it
// waits for one birpedge agent per edge, then drives the BIRP slot protocol.
//
// Usage:
//
//	birpsched -listen 127.0.0.1:7700 -small -apps 1 -versions 3 -slots 50
//
// Start the matching agents with cmd/birpedge (edge ids 0..N-1).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	birp "repro"
	"repro/internal/cliutil"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7700", "TCP listen address")
	small := flag.Bool("small", true, "use the 3-edge small-scale cluster")
	apps := flag.Int("apps", 1, "number of applications")
	versions := flag.Int("versions", 3, "model versions per application")
	slots := flag.Int("slots", 50, "slots to schedule")
	tolerate := flag.Bool("tolerate", false, "survive agent failures: mark dead edges down, let restarted agents rejoin")
	noReuse := flag.Bool("noreuse", false, "disable cross-slot solver reuse (incumbent seeding, plan memoization); every slot solves cold")
	hier := flag.Bool("hier", false, "hierarchical domain-decomposed scheduling (default domain size 16)")
	domains := flag.Int("domains", 0, "fix the collaboration-domain count (> 0 implies -hier)")
	flag.Parse()

	check := &cliutil.Checker{}
	check.PositiveInt("apps", *apps)
	check.PositiveInt("versions", *versions)
	check.PositiveInt("slots", *slots)
	check.NonNegativeInt("domains", *domains)
	if err := check.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	c := birp.DefaultCluster()
	if *small {
		c = birp.SmallCluster()
	}
	catalogue := birp.Catalogue(*apps, *versions)
	schedOpt := birp.SchedulerOptions{DisableSlotReuse: *noReuse, Domains: *domains}
	if *hier && *domains == 0 {
		schedOpt.DomainSize = 16
	}
	sched, err := birp.NewBIRP(c, catalogue, schedOpt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	srv, err := birp.NewSchedulerServer(birp.ServerConfig{
		Listen: *listen, Cluster: c, Apps: catalogue,
		Scheduler: sched, Slots: *slots,
		TolerateFailures: *tolerate,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("scheduler listening on %s; waiting for %d edge agents\n", srv.Addr(), c.N())
	rep, err := srv.Run(context.Background())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("done: served %d requests (dropped %d), total loss %.1f, p%% %.2f%%\n",
		rep.Served, rep.Dropped, rep.Loss.Total(), 100*rep.FailureRate())
	if len(rep.FailedEdges) > 0 {
		fmt.Printf("failed edges %v, rejoined %v\n", rep.FailedEdges, rep.RejoinedEdges)
		for _, k := range rep.FailedEdges {
			fmt.Printf("  edge %d: down %d/%d slots, served %d requests\n",
				k, rep.DownSlots[k], *slots, rep.ServedByEdge[k])
		}
	}
}
