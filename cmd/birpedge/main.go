// Command birpedge runs one edge agent of the distributed prototype: it
// generates its region's arrivals, reports them to the scheduler every slot,
// executes the assignments it receives on its local device model, and sends
// execution feedback back.
//
// Usage (one process per edge, matching birpsched's cluster):
//
//	birpedge -addr 127.0.0.1:7700 -edge 0 -apps 1 -versions 3 -slots 50
//	birpedge -addr 127.0.0.1:7700 -edge 1 ...
//
// With -retry N the agent keeps redialing (exponential backoff starting at
// -backoff, jittered, capped at 5s), so launch order stops mattering: edges
// may come up before the scheduler. The same budget covers mid-run
// reconnects — after a connection loss the agent redials, re-helloes with
// Resume set, and rejoins the run at the slot the scheduler resyncs it to.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	birp "repro"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7700", "scheduler address")
	edge := flag.Int("edge", 0, "edge id (index into the cluster)")
	small := flag.Bool("small", true, "use the 3-edge small-scale cluster")
	apps := flag.Int("apps", 1, "number of applications")
	versions := flag.Int("versions", 3, "model versions per application")
	slots := flag.Int("slots", 50, "slots to serve")
	mean := flag.Float64("mean", 95, "mean requests per (app, edge) per slot")
	seed := flag.Int64("seed", 1, "trace and noise seed (shared across agents)")
	noise := flag.Float64("noise", 0.02, "relative execution-time noise")
	realtime := flag.Float64("realtime", 0, "sleep factor per simulated ms (0 = instant)")
	retry := flag.Int("retry", 0, "extra dial attempts and mid-run reconnect budget (0 = fail fast)")
	backoff := flag.Duration("backoff", 100*time.Millisecond, "base retry backoff (doubles per attempt, capped at 5s)")
	flag.Parse()

	c := birp.DefaultCluster()
	if *small {
		c = birp.SmallCluster()
	}
	if *edge < 0 || *edge >= c.N() {
		fmt.Fprintf(os.Stderr, "edge id %d out of range [0, %d)\n", *edge, c.N())
		os.Exit(2)
	}
	catalogue := birp.Catalogue(*apps, *versions)
	// All agents generate from the same seeded trace and slice out their own
	// edge, so the cluster-wide workload is consistent without coordination.
	tr, err := birp.GenerateTrace(birp.TraceConfig{
		Apps: *apps, Edges: c.N(), Slots: *slots, Seed: *seed,
		MeanPerSlot: *mean, Imbalance: 0.8, BurstProb: 0.05, BurstScale: 2,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	arrivals := make([][]int, *slots)
	for t := 0; t < *slots; t++ {
		arrivals[t] = make([]int, *apps)
		for i := 0; i < *apps; i++ {
			arrivals[t][i] = tr.R[t][i][*edge]
		}
	}
	agent, err := birp.NewEdgeAgent(birp.AgentConfig{
		Addr: *addr, EdgeID: *edge,
		Device: c.Edges[*edge].Device, Apps: catalogue,
		Arrivals: arrivals, NoiseSigma: *noise, Seed: *seed + int64(*edge),
		Realtime:    *realtime,
		DialRetries: *retry, ReconnectRetries: *retry, Backoff: *backoff,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("edge %d (%s) connecting to %s\n", *edge, c.Edges[*edge].Device.Name, *addr)
	if err := agent.Run(context.Background()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("edge %d done\n", *edge)
}
