// Command birplint is the repository's determinism linter: it loads every
// package in the module with the stdlib-only loader in internal/analysis and
// runs the analyzers that enforce the solver stack's reproducibility
// invariants — six intra-file rules (no observable map order, no raw float
// equality, no wall-clock reads in solve paths, no dropped intra-module
// errors, no copied locks, no loop-variable captures in fan-outs) and four
// interprocedural rules over the whole-module call graph (determinism taint
// into Plan/Report/Stats/Summary outputs, shared writes in goroutine
// fan-outs, joinless goroutines, and non-total sort comparators).
//
// Usage:
//
//	birplint [-json] [-analyzers list] [patterns...]
//	birplint -changed [files.go...]        # or: git diff --name-only | birplint -changed -
//
// Patterns are package directories; a trailing /... walks recursively (the
// default pattern is ./...). testdata directories are skipped unless the
// pattern root itself points inside one, so the golden fixture packages can
// be linted by naming them:
//
//	birplint ./...                                  # the whole module
//	birplint -json ./... | python3 scripts/lintreport.py
//	birplint ./internal/analysis/testdata/src/...   # the seeded fixtures
//
// With -changed, the arguments are .go files instead of package directories
// ("-" reads a newline-separated file list from stdin, which is how
// scripts/check.sh -short feeds it the git diff). The full analyzer set runs
// over the packages containing those files, but only findings positioned in
// the named files are reported — the pre-commit tier in seconds instead of
// whole-module time. The trade-off: interprocedural facts are computed from
// the changed packages and their imports only, so a change that breaks an
// invariant in an unloaded caller surfaces in the full run, not here.
//
// Exit status: 0 when every finding is waived or there are none, 1 when any
// unwaived finding remains, 2 on usage or load errors.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of text")
	names := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	changed := flag.Bool("changed", false, "arguments are changed .go files (or - for stdin), not package patterns; only findings in those files are reported")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.All()
	if *names != "" {
		var err error
		analyzers, err = analysis.ByName(*names)
		if err != nil {
			fatal(err)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fatal(err)
	}

	var units []*analysis.Unit
	if *changed {
		units, err = loadChanged(loader, flag.Args())
		if err != nil {
			fatal(err)
		}
		if len(units) == 0 {
			// Nothing lintable changed: vacuously clean.
			if *jsonOut {
				writeJSON(os.Stdout, analyzers, nil, 0, analysis.ModuleStats{})
			}
			return
		}
	} else {
		patterns := flag.Args()
		if len(patterns) == 0 {
			patterns = []string{"./..."}
		}
		var dirs []string
		seen := map[string]bool{}
		for _, pat := range patterns {
			expanded, err := expand(loader, pat)
			if err != nil {
				fatal(err)
			}
			for _, d := range expanded {
				if !seen[d] {
					seen[d] = true
					dirs = append(dirs, d)
				}
			}
		}
		units, err = loader.Load(dirs)
		if err != nil {
			fatal(err)
		}
	}

	diags, stats := analysis.AnalyzeModule(units, analyzers)
	for i := range diags {
		// Report module-relative paths so output is stable across checkouts.
		if rel, err := filepath.Rel(root, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = rel
		}
	}

	unwaived := 0
	for _, d := range diags {
		if !d.Waived {
			unwaived++
		}
	}

	if *jsonOut {
		writeJSON(os.Stdout, analyzers, diags, unwaived, stats)
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
		if unwaived > 0 {
			fmt.Fprintf(os.Stderr, "birplint: %d unwaived finding(s)\n", unwaived)
		}
	}
	if unwaived > 0 {
		os.Exit(1)
	}
}

// loadChanged resolves a changed-file list to loaded units restricted (via
// Unit.OnlyFiles) to reporting on exactly those files. Missing files (e.g.
// deletions in the diff) and non-Go files are skipped silently.
func loadChanged(loader *analysis.Loader, args []string) ([]*analysis.Unit, error) {
	var files []string
	for _, a := range args {
		if a == "-" {
			sc := bufio.NewScanner(os.Stdin)
			for sc.Scan() {
				if line := strings.TrimSpace(sc.Text()); line != "" {
					files = append(files, line)
				}
			}
			if err := sc.Err(); err != nil {
				return nil, err
			}
			continue
		}
		files = append(files, a)
	}

	only := map[string]bool{}
	dirSeen := map[string]bool{}
	var dirs []string
	for _, f := range files {
		if !strings.HasSuffix(f, ".go") {
			continue
		}
		abs, err := filepath.Abs(f)
		if err != nil {
			return nil, err
		}
		if info, err := os.Stat(abs); err != nil || info.IsDir() {
			continue
		}
		only[abs] = true
		if d := filepath.Dir(abs); !dirSeen[d] {
			dirSeen[d] = true
			dirs = append(dirs, d)
		}
	}
	if len(dirs) == 0 {
		return nil, nil
	}
	units, err := loader.Load(dirs)
	if err != nil {
		return nil, err
	}
	for _, u := range units {
		u.OnlyFiles = only
	}
	return units, nil
}

// expand resolves a package pattern to directories.
func expand(loader *analysis.Loader, pat string) ([]string, error) {
	if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		if rest == "." || rest == "" {
			rest = "."
		}
		return loader.Walk(rest)
	}
	info, err := os.Stat(pat)
	if err != nil {
		return nil, fmt.Errorf("birplint: %w", err)
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("birplint: %s is not a directory", pat)
	}
	abs, err := filepath.Abs(pat)
	if err != nil {
		return nil, err
	}
	return []string{abs}, nil
}

// report is the -json schema scripts/lintreport.py consumes.
type report struct {
	Analyzers []string              `json:"analyzers"`
	Findings  []analysis.Diagnostic `json:"findings"`
	Counts    map[string]counts     `json:"counts"`
	Unwaived  int                   `json:"unwaived"`
	// CallGraph sizes the interprocedural machinery (zero-valued when no
	// module analyzer ran) so analysis-cost regressions are visible.
	CallGraph analysis.ModuleStats `json:"callgraph"`
}

type counts struct {
	Reported int `json:"reported"` // unwaived findings
	Waived   int `json:"waived"`
}

func writeJSON(w *os.File, analyzers []*analysis.Analyzer, diags []analysis.Diagnostic, unwaived int, stats analysis.ModuleStats) {
	r := report{
		Findings:  diags,
		Counts:    map[string]counts{},
		Unwaived:  unwaived,
		CallGraph: stats,
	}
	if r.Findings == nil {
		r.Findings = []analysis.Diagnostic{}
	}
	for _, a := range analyzers {
		r.Analyzers = append(r.Analyzers, a.Name)
		r.Counts[a.Name] = counts{}
	}
	for _, d := range diags {
		c := r.Counts[d.Analyzer]
		if d.Waived {
			c.Waived++
		} else {
			c.Reported++
		}
		r.Counts[d.Analyzer] = c
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
