// Command birplint is the repository's determinism linter: it loads every
// package in the module with the stdlib-only loader in internal/analysis and
// runs the analyzers that enforce the solver stack's reproducibility
// invariants (no observable map order, no raw float equality, no wall-clock
// reads in solve paths, no dropped intra-module errors, no copied locks, no
// loop-variable captures in fan-outs).
//
// Usage:
//
//	birplint [-json] [-analyzers list] [patterns...]
//
// Patterns are package directories; a trailing /... walks recursively (the
// default pattern is ./...). testdata directories are skipped unless the
// pattern root itself points inside one, so the golden fixture packages can
// be linted by naming them:
//
//	birplint ./...                                  # the whole module
//	birplint -json ./... | python3 scripts/lintreport.py
//	birplint ./internal/analysis/testdata/src/...   # the seeded fixtures
//
// Exit status: 0 when every finding is waived or there are none, 1 when any
// unwaived finding remains, 2 on usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of text")
	names := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.All()
	if *names != "" {
		var err error
		analyzers, err = analysis.ByName(*names)
		if err != nil {
			fatal(err)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fatal(err)
	}

	var dirs []string
	seen := map[string]bool{}
	for _, pat := range patterns {
		expanded, err := expand(loader, pat)
		if err != nil {
			fatal(err)
		}
		for _, d := range expanded {
			if !seen[d] {
				seen[d] = true
				dirs = append(dirs, d)
			}
		}
	}

	units, err := loader.Load(dirs)
	if err != nil {
		fatal(err)
	}

	var diags []analysis.Diagnostic
	for _, u := range units {
		diags = append(diags, analysis.Analyze(u, analyzers)...)
	}
	for i := range diags {
		// Report module-relative paths so output is stable across checkouts.
		if rel, err := filepath.Rel(root, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = rel
		}
	}

	unwaived := 0
	for _, d := range diags {
		if !d.Waived {
			unwaived++
		}
	}

	if *jsonOut {
		writeJSON(os.Stdout, analyzers, diags, unwaived)
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
		if unwaived > 0 {
			fmt.Fprintf(os.Stderr, "birplint: %d unwaived finding(s)\n", unwaived)
		}
	}
	if unwaived > 0 {
		os.Exit(1)
	}
}

// expand resolves a package pattern to directories.
func expand(loader *analysis.Loader, pat string) ([]string, error) {
	if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		if rest == "." || rest == "" {
			rest = "."
		}
		return loader.Walk(rest)
	}
	info, err := os.Stat(pat)
	if err != nil {
		return nil, fmt.Errorf("birplint: %w", err)
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("birplint: %s is not a directory", pat)
	}
	abs, err := filepath.Abs(pat)
	if err != nil {
		return nil, err
	}
	return []string{abs}, nil
}

// report is the -json schema scripts/lintreport.py consumes.
type report struct {
	Analyzers []string              `json:"analyzers"`
	Findings  []analysis.Diagnostic `json:"findings"`
	Counts    map[string]counts     `json:"counts"`
	Unwaived  int                   `json:"unwaived"`
}

type counts struct {
	Reported int `json:"reported"` // unwaived findings
	Waived   int `json:"waived"`
}

func writeJSON(w *os.File, analyzers []*analysis.Analyzer, diags []analysis.Diagnostic, unwaived int) {
	r := report{
		Findings: diags,
		Counts:   map[string]counts{},
		Unwaived: unwaived,
	}
	if r.Findings == nil {
		r.Findings = []analysis.Diagnostic{}
	}
	for _, a := range analyzers {
		r.Analyzers = append(r.Analyzers, a.Name)
		r.Counts[a.Name] = counts{}
	}
	for _, d := range diags {
		c := r.Counts[d.Analyzer]
		if d.Waived {
			c.Waived++
		} else {
			c.Reported++
		}
		r.Counts[d.Analyzer] = c
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
