// Command tirprofile measures and fits TIR curves — the offline profiling
// step BIRP-OFF depends on and the data behind the paper's Fig. 2.
//
// Usage:
//
//	tirprofile                 # Fig. 2 models on the Jetson Nano
//	tirprofile -device atlas -maxb 32 -reps 10
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/accel"
	"repro/internal/fit"
	"repro/internal/metrics"
	"repro/internal/models"
)

func main() {
	device := flag.String("device", "nano", "device: nano, nx, atlas")
	maxB := flag.Int("maxb", 16, "largest batch size to profile")
	reps := flag.Int("reps", 5, "measurements per batch size")
	sigma := flag.Float64("noise", 0.02, "relative measurement noise")
	seed := flag.Int64("seed", 1, "measurement noise seed")
	flag.Parse()

	var d *accel.Device
	switch *device {
	case "nano":
		d = &accel.JetsonNano
	case "nx":
		d = &accel.JetsonNX
	case "atlas":
		d = &accel.Atlas200DK
	default:
		fmt.Fprintf(os.Stderr, "unknown device %q\n", *device)
		os.Exit(2)
	}
	rng := rand.New(rand.NewSource(*seed))
	fmt.Printf("TIR profiles on %s (b = 1..%d, %d reps, σ = %.0f%%)\n\n",
		d.Name, *maxB, *reps, 100**sigma)
	for _, m := range models.Fig2Models() {
		var samples []fit.Sample
		for b := 1; b <= *maxB; b++ {
			for r := 0; r < *reps; r++ {
				samples = append(samples, fit.Sample{B: b, TIR: d.TIRNoisy(m.Profile, b, *sigma, rng)})
			}
		}
		p, err := fit.Piecewise(samples)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", m.Name, err)
			os.Exit(1)
		}
		fmt.Printf("%s: TIR(b) = b^%.3f for b ≤ %.0f, %.3f beyond   (RMSE %.4f)\n",
			m.Name, p.Eta, p.Beta, p.C, fit.RMSE(p, samples))
		tab := metrics.NewTable("b", "mean TIR", "fit", "batch ms")
		for b := 1; b <= *maxB; b++ {
			var sum float64
			n := 0
			for _, s := range samples {
				if s.B == b {
					sum += s.TIR
					n++
				}
			}
			tab.AddRow(fmt.Sprintf("%d", b), fmt.Sprintf("%.3f", sum/float64(n)),
				fmt.Sprintf("%.3f", p.TIR(float64(b))),
				fmt.Sprintf("%.1f", d.BatchTimeMS(m.Profile, b)))
		}
		fmt.Println(tab)
	}
}
