// Command birpbench regenerates the paper's tables and figures.
//
// Usage:
//
//	birpbench -exp table1,fig2,fig4,fig5,fig6,fig7   # or "all"
//	birpbench -exp fig7 -slots 300 -seed 1
//
// Every experiment prints the rows/series the paper reports; EXPERIMENTS.md
// records a captured run against the paper's numbers.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	birp "repro"
	"repro/internal/cliutil"
)

// knownExps is the -exp vocabulary; an unknown name is an error, not a
// silent no-op run (a typo like "fig77" used to run nothing and exit 0).
var knownExps = map[string]bool{
	"all": true, "fig1": true, "table1": true, "fig2": true, "fig4": true,
	"fig5": true, "fig6": true, "fig7": true, "convergence": true,
	"ablations": true, "scorecard": true, "sensitivity": true, "scale": true,
}

// timingReport is the machine-readable output of -json: per-experiment
// wall-clock seconds plus the knobs that shaped the run, so serial and
// parallel runs can be compared mechanically (see BENCH_PR1.json).
type timingReport struct {
	Workers    int         `json:"workers"`
	Slots      int         `json:"slots"`
	Seed       int64       `json:"seed"`
	Quick      bool        `json:"quick"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Timings    []expTiming `json:"timings"`
	// Solver carries the cumulative MIQP engine counters per
	// "experiment/arm" (BIRP-family arms only), so bench harnesses can
	// track relaxation counts and warm-start hit rates mechanically.
	Solver map[string]birp.SolverStats `json:"solver,omitempty"`
	// Scale carries the fleet-scaling experiment's quality outcome (-exp
	// scale), which the text tables don't expose mechanically.
	Scale *scaleSummary `json:"scale,omitempty"`
}

// scaleSummary is the JSON shape of one -exp scale run.
type scaleSummary struct {
	K            int     `json:"k"`
	Hierarchical bool    `json:"hierarchical"`
	Domains      int     `json:"domains"`
	Slots        int     `json:"slots"`
	TotalLoss    float64 `json:"total_loss"`
	FailureRate  float64 `json:"failure_rate"`
	Served       int     `json:"served"`
	Dropped      int     `json:"dropped"`
	Violations   int     `json:"violations"`
}

type expTiming struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

func main() {
	exp := flag.String("exp", "all", "comma-separated experiments: fig1,table1,fig2,fig4,fig5,fig6,fig7,convergence,ablations,scorecard,sensitivity,scale (scale is opt-in, not in \"all\")")
	slots := flag.Int("slots", 300, "evaluation horizon in slots")
	seed := flag.Int64("seed", 1, "trace and noise seed")
	quick := flag.Bool("quick", false, "reduced sizes (fast smoke run)")
	csvDir := flag.String("csv", "", "also export figure series as CSV files to this directory")
	workers := flag.Int("workers", 0, "solve/sweep parallelism (0 = one worker per CPU, 1 = serial); results are identical for every value")
	jsonPath := flag.String("json", "", "write machine-readable per-experiment timings (JSON) to this file")
	solverStats := flag.Bool("solverstats", false, "print cumulative MIQP solver counters (nodes, warm-start hit rate, pivots, presolve reductions) after fig6/fig7")
	pprofPath := flag.String("pprof", "", "write a CPU profile of the whole run to this file")
	profileKind := flag.String("profile", "", "write per-experiment profiles: cpu, heap, or allocs (one <exp>.<kind>.pprof per experiment; see -profdir)")
	profDir := flag.String("profdir", ".", "directory for -profile output files")
	noReuse := flag.Bool("noreuse", false, "disable cross-slot solver reuse (incumbent seeding, plan memoization); every slot solves cold — for A/B measurement")
	dense := flag.Bool("dense", false, "solve all LP relaxations with the legacy dense tableau engine instead of the sparse revised simplex — for A/B measurement")
	noFactorReuse := flag.Bool("nofactorreuse", false, "refactorize on every warm simplex re-entry instead of reusing the parent node's LU snapshot — for A/B measurement (plans are byte-identical either way)")
	k := flag.Int("k", 50, "fleet size for -exp scale (seeded synthetic fleet)")
	hier := flag.Bool("hier", false, "hierarchical domain-decomposed scheduling for the core-family arms (default domain size 16)")
	domains := flag.Int("domains", 0, "fix the collaboration-domain count (> 0 implies -hier)")
	flag.Parse()

	check := &cliutil.Checker{}
	check.KnownNames("exp", *exp, knownExps)
	check.PositiveInt("slots", *slots)
	check.NonNegativeInt("workers", *workers)
	check.PositiveInt("k", *k)
	check.NonNegativeInt("domains", *domains)
	// -dense -hier is NOT a conflict: hierarchical sub-schedulers inherit
	// the engine choice, so the combination A/Bs the dense engine inside
	// every domain (TestHierarchicalDenseEngineComposes pins it).
	if *profileKind != "" {
		check.OneOf("profile", *profileKind, "cpu", "heap", "allocs")
		check.Checkf(*pprofPath == "", "-profile and -pprof are mutually exclusive (only one CPU profile can be active)")
	}
	if err := check.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *pprofPath != "" {
		f, err := os.Create(*pprofPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pprof: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "pprof: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	opt := birp.ExperimentOptions{
		Seed: *seed, Slots: *slots, Quick: *quick, Workers: *workers,
		DisableSlotReuse: *noReuse, DenseEngine: *dense, NoFactorReuse: *noFactorReuse,
		Hierarchical: *hier, Domains: *domains, K: *k,
	}
	report := timingReport{
		Workers: *workers, Slots: *slots, Seed: *seed, Quick: *quick,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Solver:     map[string]birp.SolverStats{},
	}
	noteSolver := func(exp string, results []birp.EvalResult) {
		for _, r := range results {
			if r.Solver != nil {
				report.Solver[exp+"/"+r.Name] = *r.Solver
			}
		}
	}
	run := func(name string, f func() error) {
		if !all && !want[name] {
			return
		}
		if *profileKind != "" {
			f = profiled(*profileKind, *profDir, name, f)
		}
		start := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		//birplint:ignore dettaint // Timings IS wall-clock telemetry by design; the identity checks compare node counts and plans, never timings
		report.Timings = append(report.Timings, expTiming{Name: name, Seconds: elapsed.Seconds()})
		fmt.Printf("[%s completed in %v]\n\n", name, elapsed.Round(time.Millisecond))
	}

	run("fig1", func() error { _, err := birp.Fig1(os.Stdout, opt); return err })
	run("table1", func() error { birp.Table1(os.Stdout); return nil })
	run("fig2", func() error { _, err := birp.Fig2(os.Stdout, *seed); return err })
	run("fig4", func() error {
		// Fig. 4 and 5 come from one sweep; snapshots per the paper.
		pts, err := birp.PresetSweep(os.Stdout, opt, snapshots(*slots))
		if err != nil {
			return err
		}
		if *csvDir != "" {
			return birp.WriteSweepCSV(*csvDir, pts, snapshots(*slots))
		}
		return nil
	})
	if !all && want["fig5"] && !want["fig4"] {
		run("fig5", func() error {
			_, err := birp.PresetSweep(os.Stdout, opt, snapshots(*slots))
			return err
		})
	}
	run("fig6", func() error {
		results, err := birp.Fig6(os.Stdout, opt)
		if err != nil {
			return err
		}
		summarize(results)
		noteSolver("fig6", results)
		if *solverStats {
			printSolverStats(results)
		}
		if *csvDir != "" {
			return birp.WriteComparisonCSV(*csvDir, "fig6", results)
		}
		return nil
	})
	run("sensitivity", func() error {
		_, err := birp.Sensitivity(os.Stdout, opt, nil)
		return err
	})
	run("scorecard", func() error {
		_, err := birp.Scorecard(os.Stdout, opt)
		return err
	})
	run("ablations", func() error {
		_, err := birp.Ablations(os.Stdout, opt)
		return err
	})
	run("convergence", func() error {
		_, err := birp.Convergence(os.Stdout, opt)
		return err
	})
	// scale is opt-in only (not part of "all"): large fleets at the default
	// 300-slot horizon would dominate the suite's runtime.
	runScale := func() error {
		res, err := birp.Scale(os.Stdout, opt)
		if err != nil {
			return err
		}
		report.Scale = &scaleSummary{
			K: res.K, Hierarchical: res.Hierarchical, Domains: res.Domains,
			Slots: res.Slots, TotalLoss: res.TotalLoss, FailureRate: res.FailureRate,
			Served: res.Served, Dropped: res.Dropped, Violations: res.Violations,
		}
		if res.Solver != nil {
			report.Solver["scale/BIRP"] = *res.Solver
		}
		return nil
	}
	if want["scale"] {
		if *profileKind != "" {
			runScale = profiled(*profileKind, *profDir, "scale", runScale)
		}
		start := time.Now()
		if err := runScale(); err != nil {
			fmt.Fprintf(os.Stderr, "scale: %v\n", err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		//birplint:ignore dettaint // Timings IS wall-clock telemetry by design; the identity checks compare node counts and plans, never timings
		report.Timings = append(report.Timings, expTiming{Name: "scale", Seconds: elapsed.Seconds()})
		fmt.Printf("[scale completed in %v]\n\n", elapsed.Round(time.Millisecond))
	}
	run("fig7", func() error {
		results, err := birp.Fig7(os.Stdout, opt)
		if err != nil {
			return err
		}
		summarize(results)
		noteSolver("fig7", results)
		if *solverStats {
			printSolverStats(results)
		}
		if *csvDir != "" {
			return birp.WriteComparisonCSV(*csvDir, "fig7", results)
		}
		return nil
	})

	if *jsonPath != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "timings: %v\n", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "timings: %v\n", err)
			os.Exit(1)
		}
	}
}

// profiled wraps one experiment with profile capture, writing
// <dir>/<name>.<kind>.pprof. CPU profiles bracket the experiment;
// heap/allocs profiles are written after it returns (after a GC for "heap",
// so the snapshot shows live retention rather than collectable garbage;
// "allocs" reports every sampled allocation since process start, which
// attributes steady-state churn to its allocation sites). The reproducible
// profiling workflow (scripts/profreport.py) consumes these files.
func profiled(kind, dir, name string, f func() error) func() error {
	return func() error {
		path := fmt.Sprintf("%s/%s.%s.pprof", dir, name, kind)
		switch kind {
		case "cpu":
			out, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := pprof.StartCPUProfile(out); err != nil {
				out.Close()
				return err
			}
			err = f()
			pprof.StopCPUProfile()
			if cerr := out.Close(); err == nil {
				err = cerr
			}
			return err
		case "heap", "allocs":
			if err := f(); err != nil {
				return err
			}
			if kind == "heap" {
				runtime.GC()
			}
			out, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := pprof.Lookup(kind).WriteTo(out, 0); err != nil {
				out.Close()
				return err
			}
			return out.Close()
		}
		return f()
	}
}

func snapshots(slots int) []int {
	out := []int{}
	for _, t := range []int{10, 100, 300} {
		if t <= slots {
			out = append(out, t)
		}
	}
	if len(out) == 0 {
		out = []int{slots}
	}
	return out
}

func summarize(results []birp.EvalResult) {
	fmt.Println("headline summary:")
	for _, r := range results {
		fmt.Printf("  %-9s total loss %10.0f   p%% %6.2f%%   dropped %d\n",
			r.Name, r.TotalLoss(), 100*r.FailureRate, r.Dropped)
	}
	if b, o := find(results, "BIRP"), find(results, "OAEI"); b != nil && o != nil && o.TotalLoss() > 0 {
		fmt.Printf("  BIRP vs OAEI: loss %+.1f%%, SLO-failure ratio %.1f%% (paper: -32.9%% and 19.8%%)\n",
			100*(b.TotalLoss()/o.TotalLoss()-1), 100*b.FailureRate/o.FailureRate)
	}
	fmt.Println()
}

// printSolverStats reports the MIQP engine counters for the arms that expose
// them (the core BIRP family; the baselines have no exact solver).
func printSolverStats(results []birp.EvalResult) {
	fmt.Println("solver stats (cumulative over run):")
	for _, r := range results {
		if r.Solver == nil {
			continue
		}
		fmt.Printf("  %-9s %s\n", r.Name, r.Solver)
	}
	fmt.Println()
}

func find(results []birp.EvalResult, name string) *birp.EvalResult {
	for i := range results {
		if results[i].Name == name {
			return &results[i]
		}
	}
	return nil
}
