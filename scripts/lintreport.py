#!/usr/bin/env python3
"""Render a birplint -json report as a per-analyzer summary table.

Usage:
    go run ./cmd/birplint -json ./... | python3 scripts/lintreport.py
    python3 scripts/lintreport.py lint.json

Exit status is 0 whenever the report parses; gating on unwaived findings is
birplint's own exit code, which scripts/check.sh propagates separately.
"""
import json
import signal
import sys

# Dying quietly on a closed pipe (e.g. `... | head`) beats a traceback.
signal.signal(signal.SIGPIPE, signal.SIG_DFL)


def main(argv):
    if len(argv) > 1:
        with open(argv[1], encoding="utf-8") as fh:
            report = json.load(fh)
    else:
        report = json.load(sys.stdin)

    counts = report.get("counts", {})
    findings = report.get("findings") or []
    unwaived = report.get("unwaived", 0)

    width = max([len("analyzer")] + [len(name) for name in counts])
    print(f"{'analyzer':<{width}}  unwaived  waived")
    for name in sorted(counts):
        c = counts[name]
        print(f"{name:<{width}}  {c.get('reported', 0):>8}  {c.get('waived', 0):>6}")
    total_waived = sum(c.get("waived", 0) for c in counts.values())
    print(f"{'total':<{width}}  {unwaived:>8}  {total_waived:>6}")

    # Call-graph size line: how much interprocedural machinery the module
    # analyzers walked, so graph blow-ups or fixpoint divergence show up in
    # every lint run.
    cg = report.get("callgraph") or {}
    if cg.get("functions"):
        print(
            f"callgraph: {cg.get('functions', 0)} functions, "
            f"{cg.get('edges', 0)} edges, "
            f"fixpoint in {cg.get('fixpoint_iters', 0)} iterations"
        )

    if unwaived:
        print()
        print("unwaived findings:")
        for d in findings:
            if not d.get("waived"):
                print(f"  {d['file']}:{d['line']}:{d['col']}: [{d['analyzer']}] {d['message']}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
