#!/usr/bin/env python3
"""Assemble BENCH_PR6.json from four birpbench -json runs plus micro-bench text.

Usage:
    benchreport.py revised_w1.json revised_w4.json dense_w1.json dense_w4.json \
        micro.txt > BENCH_PR6.json

The four runs are `birpbench -exp fig7 -slots 150 -seed 1` in the engine
revised/dense × workers {1,4} matrix (dense = `-dense`, the legacy tableau
oracle). The report carries the per-run solver counters — each arm annotated
with warm-start hit rate, pivots per node, and warm-fallback rate — the
micro-benchmarks, the revised/dense A/B comparison, and a PR1→PR2→PR5→PR6
fig7 trajectory pulled from the committed BENCH_*.json artifacts.
"""
import json
import re
import sys


def annotate(st):
    """Derived per-arm rates: hit rate, pivots/node, fallback rate."""
    attempts = st.get("warm_attempts", 0)
    nodes = st.get("nodes", 0)
    st["warm_hit_rate"] = (
        round(st.get("warm_hits", 0) / attempts, 4) if attempts else 0.0
    )
    st["fallback_rate"] = (
        round(st.get("warm_fallbacks", 0) / attempts, 4) if attempts else 0.0
    )
    st["pivots_per_node"] = round(st.get("pivots", 0) / nodes, 2) if nodes else 0.0


def load_run(path):
    with open(path) as f:
        run = json.load(f)
    for st in (run.get("solver") or {}).values():
        annotate(st)
    return run


def parse_micro(path):
    out = {}
    with open(path) as f:
        for line in f:
            m = re.match(r"^(Benchmark\S+)\s+\d+\s+(\d+(?:\.\d+)?) ns/op(.*)", line)
            if not m:
                continue
            name, ns, rest = m.group(1), float(m.group(2)), m.group(3)
            entry = {"ns_per_op": ns}
            for val, unit in re.findall(r"([\d.]+) (\S+)", rest):
                entry[unit.replace("/", "_per_")] = float(val)
            out[name] = entry
    return out


def fig7_seconds(run):
    for t in run.get("timings", []):
        if t["name"] == "fig7":
            return t["seconds"]
    return None


def iter_prior_runs(prev):
    """Yield workers-1-first runs from a committed artifact. PR1/PR2 store
    "runs" as a flat list; PR5 stores a dict of named variants (the reuse-on
    arm is that PR's headline configuration)."""
    runs = prev.get("runs", [])
    if isinstance(runs, dict):
        runs = runs.get("reuse_on", []) or next(iter(runs.values()), [])
    return runs


def prior_fig7(path):
    """Pull a committed baseline's fig7 workers→seconds map, or None."""
    try:
        with open(path) as f:
            prev = json.load(f)
    except OSError:
        return None
    out = {}
    for run in iter_prior_runs(prev):
        sec = fig7_seconds(run)
        if sec is not None:
            out[f"workers_{run['workers']}_seconds"] = sec
    return out or None


def main():
    rev_w1, rev_w4, den_w1, den_w4, micro = sys.argv[1:6]
    runs = {
        "revised": [load_run(rev_w1), load_run(rev_w4)],
        "dense": [load_run(den_w1), load_run(den_w4)],
    }
    report = {
        "description": (
            "Engine A/B bench for the sparse revised simplex PR. Each run is "
            "`birpbench -exp fig7 -slots 150 -seed 1 -json ...` in the engine "
            "revised/dense × -workers {1,4} matrix (dense = -dense, the "
            "legacy tableau oracle). Within each engine the stdout of the two "
            "worker counts was byte-identical (checked by scripts/check.sh "
            "-bench). The engines pivot differently, so their outputs agree "
            "on certified objectives within the solver's 0.5% gap tolerance "
            "but are not byte-identical to each other. Wall-clock seconds on "
            "this container vary ±10-20% between identical runs; the solver "
            "counters (pivots per node, fallback rate, dual re-entries) are "
            "exact and deterministic — compare engines on those."
        ),
        "go": "go1.24 linux/amd64",
        "command": "birpbench -exp fig7 -slots 150 -seed 1 -workers {1,4} [-dense] -json ...",
        "outputs_identical_across_workers": True,
        "runs": runs,
        "micro_benchmarks": parse_micro(micro),
    }
    rev1 = fig7_seconds(runs["revised"][0])
    den1 = fig7_seconds(runs["dense"][0])
    if rev1 and den1:
        report["dense_over_revised_seconds_workers_1"] = round(den1 / rev1, 2)
    # Warm-fallback reduction: the dual re-entry path certifies bound-only
    # children that previously fell back to cold solves.
    ab = {}
    for arm, rev_st in (runs["revised"][0].get("solver") or {}).items():
        den_st = (runs["dense"][0].get("solver") or {}).get(arm)
        if not den_st:
            continue
        ab[arm] = {
            "warm_fallbacks_dense": den_st.get("warm_fallbacks", 0),
            "warm_fallbacks_revised": rev_st.get("warm_fallbacks", 0),
            "pivots_per_node_dense": den_st.get("pivots_per_node", 0.0),
            "pivots_per_node_revised": rev_st.get("pivots_per_node", 0.0),
            "dual_reentries": rev_st.get("dual_reentries", 0),
        }
    report["engine_ab"] = ab

    # PR trajectory: fig7 workers=1 seconds across the committed bench
    # artifacts. PR1 ran the pre-warm-start engine, PR2 added warm-started
    # branch & bound + presolve, PR5 the cross-slot reuse layer, PR6 (this
    # run) the sparse revised simplex with dual re-entry.
    trajectory = []
    for name, path in (
        ("PR1", "BENCH_PR1.json"),
        ("PR2", "BENCH_PR2.json"),
        ("PR5", "BENCH_PR5.json"),
    ):
        base = prior_fig7(path)
        if base and base.get("workers_1_seconds"):
            trajectory.append(
                {"pr": name, "fig7_workers_1_seconds": base["workers_1_seconds"]}
            )
    if rev1:
        trajectory.append({"pr": "PR6", "fig7_workers_1_seconds": rev1})
    ref = next(
        (r["fig7_workers_1_seconds"] for r in trajectory if r["pr"] == "PR2"), None
    )
    if ref:
        for row in trajectory:
            row["speedup_vs_pr2"] = round(ref / row["fig7_workers_1_seconds"], 2)
    report["fig7_trajectory"] = trajectory

    json.dump(report, sys.stdout, indent=2)
    sys.stdout.write("\n")


if __name__ == "__main__":
    main()
