#!/usr/bin/env python3
"""Assemble BENCH_PR2.json from two birpbench -json runs plus micro-bench text.

Usage: benchreport.py w1.json w4.json micro.txt > BENCH_PR2.json

The output follows BENCH_PR1.json's shape (description, machine note, runs
array) extended with the solver counters this PR's observability layer adds:
per-run relaxation counts and warm-start hit rates, and the warm-vs-cold
micro-benchmark.
"""
import json
import re
import sys


def load_run(path):
    with open(path) as f:
        run = json.load(f)
    solver = run.get("solver") or {}
    for key, st in solver.items():
        attempts = st.get("warm_attempts", 0)
        st["warm_hit_rate"] = (
            round(st.get("warm_hits", 0) / attempts, 4) if attempts else 0.0
        )
    return run


def parse_micro(path):
    out = {}
    with open(path) as f:
        for line in f:
            m = re.match(r"^(Benchmark\S+)\s+\d+\s+(\d+(?:\.\d+)?) ns/op(.*)", line)
            if not m:
                continue
            name, ns, rest = m.group(1), float(m.group(2)), m.group(3)
            entry = {"ns_per_op": ns}
            for val, unit in re.findall(r"([\d.]+) (\S+)", rest):
                entry[unit.replace("/", "_per_")] = float(val)
            out[name] = entry
    return out


def baseline_fig7():
    """Pull the PR1 baseline's fig7 timings for before/after comparison."""
    try:
        with open("BENCH_PR1.json") as f:
            prev = json.load(f)
    except OSError:
        return None
    out = {}
    for run in prev.get("runs", []):
        for t in run.get("timings", []):
            if t["name"] == "fig7":
                out[f"workers_{run['workers']}_seconds"] = t["seconds"]
    return out or None


def main():
    w1, w4, micro = sys.argv[1], sys.argv[2], sys.argv[3]
    report = {
        "description": (
            "Solver-engine bench for the warm-started branch & bound + presolve "
            "PR. Each run is `birpbench -exp fig7 -slots 150 -seed 1 -json ...` "
            "differing only in -workers; stdout of the two runs was "
            "byte-identical (checked by scripts/check.sh -bench), so the "
            "accelerated engine keeps the deterministic parallel contract. "
            "Note: fig7 output differs from the PR1 baseline binary — the "
            "0.5% MILP gap tolerance accepts the first incumbent proved within "
            "gap, and warm-started vertices/presolve bounds legitimately steer "
            "the search to different (equally within-gap) incumbents. "
            "Determinism is across worker counts, not across solver versions."
        ),
        "go": "go1.24 linux/amd64",
        "command": "birpbench -exp fig7 -slots 150 -seed 1 -workers {1,4} -json ...",
        "outputs_identical_across_workers": True,
        "runs": [load_run(w1), load_run(w4)],
        "micro_benchmarks": parse_micro(micro),
    }
    base = baseline_fig7()
    if base is not None:
        report["baseline_pr1_fig7"] = base
        after = next(
            (
                t["seconds"]
                for t in report["runs"][0]["timings"]
                if t["name"] == "fig7"
            ),
            None,
        )
        before = base.get("workers_1_seconds")
        if before and after:
            report["fig7_speedup_workers_1"] = round(before / after, 2)
    json.dump(report, sys.stdout, indent=2)
    sys.stdout.write("\n")


if __name__ == "__main__":
    main()
