#!/usr/bin/env python3
"""Assemble BENCH_PR5.json from four birpbench -json runs plus micro-bench text.

Usage:
    benchreport.py on_w1.json on_w4.json off_w1.json off_w4.json micro.txt \
        > BENCH_PR5.json

The four runs are `birpbench -exp fig7 -slots 150 -seed 1` in the reuse
on/off × workers {1,4} matrix (reuse off = `-noreuse`). The report carries the
per-run solver counters (relaxations, warm-start hit rate, cross-slot seed
counters), the micro-benchmarks, the reuse-on/off A/B ratio, and a PR1→PR2→PR5
fig7 trajectory table pulled from the committed BENCH_PR1.json /
BENCH_PR2.json artifacts.
"""
import json
import re
import sys


def load_run(path):
    with open(path) as f:
        run = json.load(f)
    solver = run.get("solver") or {}
    for key, st in solver.items():
        attempts = st.get("warm_attempts", 0)
        st["warm_hit_rate"] = (
            round(st.get("warm_hits", 0) / attempts, 4) if attempts else 0.0
        )
    return run


def parse_micro(path):
    out = {}
    with open(path) as f:
        for line in f:
            m = re.match(r"^(Benchmark\S+)\s+\d+\s+(\d+(?:\.\d+)?) ns/op(.*)", line)
            if not m:
                continue
            name, ns, rest = m.group(1), float(m.group(2)), m.group(3)
            entry = {"ns_per_op": ns}
            for val, unit in re.findall(r"([\d.]+) (\S+)", rest):
                entry[unit.replace("/", "_per_")] = float(val)
            out[name] = entry
    return out


def fig7_seconds(run):
    for t in run.get("timings", []):
        if t["name"] == "fig7":
            return t["seconds"]
    return None


def prior_fig7(path):
    """Pull a committed baseline's fig7 workers→seconds map, or None."""
    try:
        with open(path) as f:
            prev = json.load(f)
    except OSError:
        return None
    out = {}
    for run in prev.get("runs", []):
        sec = fig7_seconds(run)
        if sec is not None:
            out[f"workers_{run['workers']}_seconds"] = sec
    return out or None


def main():
    on_w1, on_w4, off_w1, off_w4, micro = sys.argv[1:6]
    runs = {
        "reuse_on": [load_run(on_w1), load_run(on_w4)],
        "reuse_off": [load_run(off_w1), load_run(off_w4)],
    }
    report = {
        "description": (
            "Cross-slot reuse bench for the temporal warm-start PR. Each run "
            "is `birpbench -exp fig7 -slots 150 -seed 1 -json ...` in the "
            "reuse on/off × -workers {1,4} matrix (off = -noreuse). Within "
            "each reuse setting the stdout of the two worker counts was "
            "byte-identical (checked by scripts/check.sh -bench). Reuse "
            "changes only the certified starting incumbent, so on/off "
            "objectives agree within the solver's 0.5% gap tolerance but "
            "need not be byte-identical to each other."
        ),
        "go": "go1.24 linux/amd64",
        "command": "birpbench -exp fig7 -slots 150 -seed 1 -workers {1,4} [-noreuse] -json ...",
        "outputs_identical_across_workers": True,
        "runs": runs,
        "micro_benchmarks": parse_micro(micro),
    }
    on1 = fig7_seconds(runs["reuse_on"][0])
    off1 = fig7_seconds(runs["reuse_off"][0])
    if on1 and off1:
        report["reuse_onoff_ratio_workers_1"] = round(off1 / on1, 2)

    # PR trajectory: fig7 workers=1 seconds across the committed bench
    # artifacts. PR1 ran the pre-warm-start engine, PR2 added warm-started
    # branch & bound + presolve, PR5 (this run) adds the cross-slot layer,
    # the compiled standard form, and the unrolled pivot kernel.
    trajectory = []
    for name, path in (("PR1", "BENCH_PR1.json"), ("PR2", "BENCH_PR2.json")):
        base = prior_fig7(path)
        if base and base.get("workers_1_seconds"):
            trajectory.append(
                {"pr": name, "fig7_workers_1_seconds": base["workers_1_seconds"]}
            )
    if on1:
        trajectory.append({"pr": "PR5", "fig7_workers_1_seconds": on1})
    for row in trajectory:
        ref = next(
            (r["fig7_workers_1_seconds"] for r in trajectory if r["pr"] == "PR2"), None
        )
        if ref:
            row["speedup_vs_pr2"] = round(ref / row["fig7_workers_1_seconds"], 2)
    report["fig7_trajectory"] = trajectory

    json.dump(report, sys.stdout, indent=2)
    sys.stdout.write("\n")


if __name__ == "__main__":
    main()
