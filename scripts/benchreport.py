#!/usr/bin/env python3
"""Assemble BENCH_PR7.json from the K-scaling bench matrix's birpbench runs.

Usage:
    benchreport.py <benchdir> > BENCH_PR7.json

<benchdir> is the scratch directory scripts/check.sh -bench populates:

    fig7_w{1,4}.json                    trajectory anchor (150-slot fig7)
    k6_mono_w{1,4}.json                 -exp scale -k 6   -slots 40
    k6_hier_w{1,4}.json                 -exp scale -k 6   -slots 40 -domains 3
    k50_mono_w{1,4}.json                -exp scale -k 50  -slots 8
    k50_hier_w{1,4}.json                -exp scale -k 50  -slots 8  -hier
    k500_hier_w{1,4}.json               -exp scale -k 500 -slots 3  -hier
    k500_mono_w1.json                   -exp scale -k 500 -slots 1 (may be
                                        absent: a timeout records a DNF)
    micro.txt                           go test -bench output

The report carries the full mono/hier × K × workers quality matrix, the
per-K hierarchical speedup (seconds per slot), the K=6 solution-quality gap,
the per-edge scaling profile that makes the near-linear claim checkable, the
micro-benchmarks, and a PR1→PR2→PR5→PR6→PR7 fig7 trajectory pulled from the
committed BENCH_*.json artifacts.
"""
import json
import os
import re
import sys


def annotate(st):
    """Derived per-arm rates: hit rate, pivots/node, fallback rate."""
    attempts = st.get("warm_attempts", 0)
    nodes = st.get("nodes", 0)
    st["warm_hit_rate"] = (
        round(st.get("warm_hits", 0) / attempts, 4) if attempts else 0.0
    )
    st["fallback_rate"] = (
        round(st.get("warm_fallbacks", 0) / attempts, 4) if attempts else 0.0
    )
    st["pivots_per_node"] = round(st.get("pivots", 0) / nodes, 2) if nodes else 0.0


def load_run(path):
    if not os.path.exists(path):
        return None
    with open(path) as f:
        run = json.load(f)
    for st in (run.get("solver") or {}).values():
        annotate(st)
    return run


def parse_micro(path):
    out = {}
    with open(path) as f:
        for line in f:
            m = re.match(r"^(Benchmark\S+)\s+\d+\s+(\d+(?:\.\d+)?) ns/op(.*)", line)
            if not m:
                continue
            name, ns, rest = m.group(1), float(m.group(2)), m.group(3)
            entry = {"ns_per_op": ns}
            for val, unit in re.findall(r"([\d.]+) (\S+)", rest):
                entry[unit.replace("/", "_per_")] = float(val)
            out[name] = entry
    return out


def exp_seconds(run, name):
    for t in run.get("timings", []):
        if t["name"] == name:
            return t["seconds"]
    return None


def iter_prior_runs(prev):
    """Yield workers-1-first runs from a committed artifact. PR1/PR2 store
    "runs" as a flat list; PR5/PR6 store a dict of named variants (reuse-on
    and the revised engine are those PRs' headline configurations)."""
    runs = prev.get("runs", [])
    if isinstance(runs, dict):
        runs = (
            runs.get("reuse_on")
            or runs.get("revised")
            or next(iter(runs.values()), [])
        )
    return runs


def prior_fig7(path):
    """Pull a committed baseline's fig7 workers→seconds map, or None."""
    try:
        with open(path) as f:
            prev = json.load(f)
    except OSError:
        return None
    out = {}
    for run in iter_prior_runs(prev):
        sec = exp_seconds(run, "fig7")
        if sec is not None:
            out[f"workers_{run['workers']}_seconds"] = sec
    return out or None


def scale_row(run):
    """Flatten one -exp scale run into a matrix row."""
    if run is None:
        return None
    sc = run.get("scale") or {}
    sec = exp_seconds(run, "scale")
    slots = sc.get("slots", 0)
    row = {
        "k": sc.get("k"),
        "mode": "hierarchical" if sc.get("hierarchical") else "monolithic",
        "domains": sc.get("domains"),
        "workers": run.get("workers"),
        "slots": slots,
        "seconds": round(sec, 3) if sec is not None else None,
        "seconds_per_slot": (
            round(sec / slots, 4) if sec is not None and slots else None
        ),
        "total_loss": sc.get("total_loss"),
        "failure_rate": sc.get("failure_rate"),
        "served": sc.get("served"),
        "dropped": sc.get("dropped"),
        "violations": sc.get("violations"),
    }
    if "scale/BIRP" in (run.get("solver") or {}):
        row["solver"] = run["solver"]["scale/BIRP"]
    return row


def main():
    d = sys.argv[1]
    fig7 = [load_run(os.path.join(d, f"fig7_w{w}.json")) for w in (1, 4)]

    matrix = []
    for name in ("k6_mono", "k6_hier", "k50_mono", "k50_hier", "k500_hier"):
        for w in (1, 4):
            row = scale_row(load_run(os.path.join(d, f"{name}_w{w}.json")))
            if row:
                matrix.append(row)
    mono500 = scale_row(load_run(os.path.join(d, "k500_mono_w1.json")))
    if mono500:
        matrix.append(mono500)

    def cell(k, mode, workers=1):
        for row in matrix:
            if row["k"] == k and row["mode"] == mode and row["workers"] == workers:
                return row
        return None

    report = {
        "description": (
            "K-scaling bench for the hierarchical domain-decomposed "
            "scheduling PR. Each matrix cell is `birpbench -exp scale -k K "
            "-seed 1` on the seeded synthetic fleet (cluster.Scaled), "
            "monolithic vs hierarchical (-hier / -domains) × -workers {1,4}; "
            "horizons shrink with K so every cell stays tractable. Within "
            "each configuration the stdout of the two worker counts was "
            "byte-identical (checked by scripts/check.sh -bench). The "
            "monolithic K=500 arm runs one slot under a 600 s timeout; if "
            "that cell is missing the run did not finish (DNF). This "
            "container is single-core, so workers=4 buys no wall-clock — the "
            "hierarchical speedup reported here is algorithmic (domain-local "
            "LPs replace one fleet-wide LP), and parallel domain solves "
            "stack on top of it on real multi-core hosts. Wall-clock varies "
            "±10-20% between identical runs; losses, failure rates, and "
            "solver counters are exact and deterministic."
        ),
        "go": "go1.24 linux/amd64",
        "command": (
            "birpbench -exp scale -k {6,50,500} -seed 1 -workers {1,4} "
            "[-hier|-domains D] -json ..."
        ),
        "outputs_identical_across_workers": True,
        "k_scaling_matrix": matrix,
    }

    # Headline: hierarchical vs monolithic seconds per slot at each K.
    speedups = {}
    for k in (6, 50, 500):
        mono, hier = cell(k, "monolithic"), cell(k, "hierarchical")
        if not hier or not hier["seconds_per_slot"]:
            continue
        entry = {"hier_seconds_per_slot": hier["seconds_per_slot"]}
        if mono and mono["seconds_per_slot"]:
            entry["mono_seconds_per_slot"] = mono["seconds_per_slot"]
            entry["hier_speedup"] = round(
                mono["seconds_per_slot"] / hier["seconds_per_slot"], 2
            )
        elif k == 500:
            entry["mono_seconds_per_slot"] = "DNF (>600s for 1 slot)"
        speedups[f"k{k}"] = entry
    report["hier_vs_mono"] = speedups

    # Quality check: at K=6 the 3-domain coordinator must land within ~1% of
    # the monolithic solver's total loss over the 40-slot horizon.
    mono6, hier6 = cell(6, "monolithic"), cell(6, "hierarchical")
    if mono6 and hier6 and mono6["total_loss"]:
        report["k6_loss_gap_percent"] = round(
            100 * (hier6["total_loss"] / mono6["total_loss"] - 1), 2
        )

    # Near-linearity profile: hierarchical milliseconds per edge per slot
    # should stay roughly flat as K grows (monolithic blows up superlinearly).
    profile = {}
    for row in matrix:
        if row["workers"] != 1 or not row["seconds_per_slot"]:
            continue
        profile.setdefault(row["mode"], {})[f"k{row['k']}"] = round(
            1000 * row["seconds_per_slot"] / row["k"], 2
        )
    report["ms_per_edge_slot"] = profile

    report["micro_benchmarks"] = parse_micro(os.path.join(d, "micro.txt"))

    # PR trajectory: fig7 workers=1 seconds across the committed bench
    # artifacts. PR1 ran the pre-warm-start engine, PR2 added warm-started
    # branch & bound + presolve, PR5 the cross-slot reuse layer, PR6 the
    # sparse revised simplex, PR7 (this run) leaves the monolithic fig7 path
    # untouched — its row guards against regression.
    trajectory = []
    for name, path in (
        ("PR1", "BENCH_PR1.json"),
        ("PR2", "BENCH_PR2.json"),
        ("PR5", "BENCH_PR5.json"),
        ("PR6", "BENCH_PR6.json"),
    ):
        base = prior_fig7(path)
        if base and base.get("workers_1_seconds"):
            trajectory.append(
                {"pr": name, "fig7_workers_1_seconds": base["workers_1_seconds"]}
            )
    fig7_w1 = exp_seconds(fig7[0], "fig7") if fig7[0] else None
    if fig7_w1:
        trajectory.append({"pr": "PR7", "fig7_workers_1_seconds": fig7_w1})
    ref = next(
        (r["fig7_workers_1_seconds"] for r in trajectory if r["pr"] == "PR2"), None
    )
    if ref:
        for row in trajectory:
            row["speedup_vs_pr2"] = round(ref / row["fig7_workers_1_seconds"], 2)
    report["fig7_trajectory"] = trajectory
    if fig7[0]:
        report["fig7_runs"] = [r for r in fig7 if r]

    json.dump(report, sys.stdout, indent=2)
    sys.stdout.write("\n")


if __name__ == "__main__":
    main()
