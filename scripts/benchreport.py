#!/usr/bin/env python3
"""Assemble BENCH_PR9.json from the serving-daemon bench runs.

Usage:
    benchreport.py <benchdir> > BENCH_PR9.json

<benchdir> is the scratch directory scripts/check.sh -bench populates:

    fig7_w{1,4}.json      trajectory anchor (150-slot fig7 via birpbench)
    serve_w{1,4}.json     birpserve 10k-request replay counters (-json),
                          one per planner worker count; the decision logs
                          of the two runs were byte-compared by check.sh
    micro.txt             go test -bench output

The report carries the serving section (admitted-requests/sec pipeline
throughput, the staleness percentile profile against its bound, and the
admission/routing counter breakdown), the micro-benchmarks, and a
PR1→PR2→PR5→PR6→PR7→PR9 fig7 trajectory pulled from the committed
BENCH_*.json artifacts.
"""
import json
import os
import re
import sys


def annotate(st):
    """Derived per-arm rates: hit rate, pivots/node, fallback rate."""
    attempts = st.get("warm_attempts", 0)
    nodes = st.get("nodes", 0)
    st["warm_hit_rate"] = (
        round(st.get("warm_hits", 0) / attempts, 4) if attempts else 0.0
    )
    st["fallback_rate"] = (
        round(st.get("warm_fallbacks", 0) / attempts, 4) if attempts else 0.0
    )
    st["pivots_per_node"] = round(st.get("pivots", 0) / nodes, 2) if nodes else 0.0


def load_run(path):
    if not os.path.exists(path):
        return None
    with open(path) as f:
        run = json.load(f)
    for st in (run.get("solver") or {}).values():
        annotate(st)
    return run


def parse_micro(path):
    out = {}
    with open(path) as f:
        for line in f:
            m = re.match(r"^(Benchmark\S+)\s+\d+\s+(\d+(?:\.\d+)?) ns/op(.*)", line)
            if not m:
                continue
            name, ns, rest = m.group(1), float(m.group(2)), m.group(3)
            entry = {"ns_per_op": ns}
            for val, unit in re.findall(r"([\d.]+) (\S+)", rest):
                entry[unit.replace("/", "_per_")] = float(val)
            out[name] = entry
    return out


def exp_seconds(run, name):
    for t in run.get("timings", []):
        if t["name"] == name:
            return t["seconds"]
    return None


def iter_prior_runs(prev):
    """Yield workers-1-first runs from a committed artifact. PR1/PR2 store
    "runs" as a flat list; PR5/PR6 store a dict of named variants (reuse-on
    and the revised engine are those PRs' headline configurations); PR7
    stores its fig7 anchor runs under "fig7_runs"."""
    runs = prev.get("runs") or prev.get("fig7_runs") or []
    if isinstance(runs, dict):
        runs = (
            runs.get("reuse_on")
            or runs.get("revised")
            or next(iter(runs.values()), [])
        )
    return runs


def prior_fig7(path):
    """Pull a committed baseline's fig7 workers→seconds map, or None."""
    try:
        with open(path) as f:
            prev = json.load(f)
    except OSError:
        return None
    out = {}
    for run in iter_prior_runs(prev):
        sec = exp_seconds(run, "fig7")
        if sec is not None:
            out[f"workers_{run['workers']}_seconds"] = sec
    return out or None


def serve_row(run):
    """Flatten one birpserve -json replay into a serving-section row."""
    if run is None:
        return None
    return {
        "workers": run.get("workers"),
        "policy": run.get("policy"),
        "route": run.get("route"),
        "submitted": run.get("submitted"),
        "admitted": run.get("admitted"),
        "rejected": run.get("rejected"),
        "rejected_by_reason": run.get("rejected_by_reason"),
        "routed_by_edge": run.get("routed_by_edge"),
        "replans": run.get("replans"),
        "forced_replans": run.get("forced_replans"),
        "stale_ms": {
            "p50": run.get("stale_p50_ms"),
            "p90": run.get("stale_p90_ms"),
            "p99": run.get("stale_p99_ms"),
            "max": run.get("stale_max_ms"),
            "bound": run.get("stale_bound_ms"),
        },
        "wall_seconds": round(run.get("wall_seconds", 0.0), 3),
        "admitted_per_sec": round(run.get("admitted_per_sec", 0.0)),
    }


def main():
    d = sys.argv[1]
    fig7 = [load_run(os.path.join(d, f"fig7_w{w}.json")) for w in (1, 4)]
    serve = [
        serve_row(load_run(os.path.join(d, f"serve_w{w}.json"))) for w in (1, 4)
    ]
    serve = [r for r in serve if r]

    report = {
        "description": (
            "Online-serving bench for the birpserve daemon PR. The serving "
            "section replays a 10k-request scripted stream (seed 1, "
            "token-bucket cap 64 / rate 48, least-loaded routing) through "
            "the admission→routing→snapshot pipeline on the deterministic "
            "virtual clock, once per planner worker count; "
            "scripts/check.sh -bench byte-compared the two decision logs. "
            "stale_ms is the snapshot-staleness distribution observed at "
            "decision time (virtual-clock milliseconds) against the forced-"
            "replan bound; admitted_per_sec is wall-clock pipeline "
            "throughput including every synchronous re-optimization on the "
            "replay path. Wall-clock varies ±10-20% between identical runs; "
            "all counters and the decision log are exact and deterministic. "
            "The fig7 anchor guards the monolithic optimizer path against "
            "regression."
        ),
        "go": "go1.24 linux/amd64",
        "command": (
            "birpserve -gen 10000 -seed 1 -policy token-bucket -cap 64 "
            "-rate 48 -route least-loaded -workers {1,4} -log ... -json ..."
        ),
        "decision_logs_identical_across_workers": True,
        "serve_replay": serve,
    }

    # Accounting headline: the counters the smoke tier asserts.
    if serve:
        s0 = serve[0]
        report["serve_headline"] = {
            "admitted_per_sec": s0["admitted_per_sec"],
            "admit_rate": round(s0["admitted"] / s0["submitted"], 4)
            if s0["submitted"]
            else None,
            "stale_p99_over_bound": round(
                s0["stale_ms"]["p99"] / s0["stale_ms"]["bound"], 4
            )
            if s0["stale_ms"]["bound"]
            else None,
        }

    report["micro_benchmarks"] = parse_micro(os.path.join(d, "micro.txt"))

    # PR trajectory: fig7 workers=1 seconds across the committed bench
    # artifacts. PR1 ran the pre-warm-start engine, PR2 added warm-started
    # branch & bound + presolve, PR5 the cross-slot reuse layer, PR6 the
    # sparse revised simplex, PR7 hierarchical decomposition, PR9 (this run)
    # leaves the monolithic fig7 path untouched — its row guards against
    # regression.
    trajectory = []
    for name, path in (
        ("PR1", "BENCH_PR1.json"),
        ("PR2", "BENCH_PR2.json"),
        ("PR5", "BENCH_PR5.json"),
        ("PR6", "BENCH_PR6.json"),
        ("PR7", "BENCH_PR7.json"),
    ):
        base = prior_fig7(path)
        if base and base.get("workers_1_seconds"):
            trajectory.append(
                {"pr": name, "fig7_workers_1_seconds": base["workers_1_seconds"]}
            )
    fig7_w1 = exp_seconds(fig7[0], "fig7") if fig7[0] else None
    if fig7_w1:
        trajectory.append({"pr": "PR9", "fig7_workers_1_seconds": fig7_w1})
    ref = next(
        (r["fig7_workers_1_seconds"] for r in trajectory if r["pr"] == "PR2"), None
    )
    if ref:
        for row in trajectory:
            row["speedup_vs_pr2"] = round(ref / row["fig7_workers_1_seconds"], 2)
    report["fig7_trajectory"] = trajectory
    if fig7[0]:
        report["fig7_runs"] = [r for r in fig7 if r]

    json.dump(report, sys.stdout, indent=2)
    sys.stdout.write("\n")


if __name__ == "__main__":
    main()
