#!/usr/bin/env python3
"""Assemble BENCH_PR10.json from the fixed-cost-elimination bench runs.

Usage:
    benchreport.py <benchdir> > BENCH_PR10.json

<benchdir> is the scratch directory scripts/check.sh -bench populates:

    fig7_{w1,w1b,w4}.json trajectory anchor (150-slot fig7 via birpbench);
                          the serial arm ran twice and the report keeps the
                          faster repetition (wall-clock is host-noisy, the
                          printed results were byte-compared identical)
    fig7_nofr.json        same run with -nofactorreuse; check.sh byte-compared
                          its stdout (modulo the refactor=/factor-reuse=
                          counters) against the workers=1 run
    serve_w{1,4}_r{1,2,3}.json
                          birpserve 10k-request replay counters (-json),
                          three repetitions per planner worker count; the
                          report keeps each count's best-throughput rep,
                          and check.sh byte-compared all decision logs
    micro.txt             go test -bench output (the slot-loop allocs/op
                          gate already passed over it)
    profile.json          scripts/profreport.py frame tables from the
                          per-experiment cpu/allocs profiles

The report carries the fig7 trajectory (PR1→PR2→PR5→PR6→PR7→PR9→PR10), the
steady-state slot-loop allocation trajectory, the factor-reuse knob's work
counters, the serving throughput at both worker counts, the micro-benchmarks,
and the profile frame tables.
"""
import json
import os
import re
import sys

SLOT_LOOP_ALLOC_BUDGET = 300


def annotate(st):
    """Derived per-arm rates: hit rate, pivots/node, fallback rate."""
    attempts = st.get("warm_attempts", 0)
    nodes = st.get("nodes", 0)
    st["warm_hit_rate"] = (
        round(st.get("warm_hits", 0) / attempts, 4) if attempts else 0.0
    )
    st["fallback_rate"] = (
        round(st.get("warm_fallbacks", 0) / attempts, 4) if attempts else 0.0
    )
    st["pivots_per_node"] = round(st.get("pivots", 0) / nodes, 2) if nodes else 0.0


def load_run(path):
    if not os.path.exists(path):
        return None
    with open(path) as f:
        run = json.load(f)
    for st in (run.get("solver") or {}).values():
        annotate(st)
    return run


def parse_micro(path):
    out = {}
    with open(path) as f:
        for line in f:
            m = re.match(r"^(Benchmark\S+)\s+\d+\s+(\d+(?:\.\d+)?) ns/op(.*)", line)
            if not m:
                continue
            name, ns, rest = m.group(1), float(m.group(2)), m.group(3)
            entry = {"ns_per_op": ns}
            for val, unit in re.findall(r"([\d.]+) (\S+)", rest):
                entry[unit.replace("/", "_per_")] = float(val)
            out[name] = entry
    return out


def exp_seconds(run, name):
    for t in run.get("timings", []):
        if t["name"] == name:
            return t["seconds"]
    return None


def load_prior(path):
    try:
        with open(path) as f:
            return json.load(f)
    except OSError:
        return None


def iter_prior_runs(prev):
    """Yield workers-1-first runs from a committed artifact. PR1/PR2 store
    "runs" as a flat list; PR5/PR6 store a dict of named variants (reuse-on
    and the revised engine are those PRs' headline configurations); PR7 and
    PR9 store their fig7 anchor runs under "fig7_runs"."""
    runs = prev.get("runs") or prev.get("fig7_runs") or []
    if isinstance(runs, dict):
        runs = (
            runs.get("reuse_on")
            or runs.get("revised")
            or next(iter(runs.values()), [])
        )
    return runs


def prior_fig7_w1(prev):
    """Pull a committed baseline's fig7 workers=1 seconds, or None."""
    if prev is None:
        return None
    for run in iter_prior_runs(prev):
        if run.get("workers") == 1:
            sec = exp_seconds(run, "fig7")
            if sec is not None:
                return sec
    return None


def serve_row(run):
    """Flatten one birpserve -json replay into a serving-section row."""
    if run is None:
        return None
    return {
        "workers": run.get("workers"),
        "policy": run.get("policy"),
        "route": run.get("route"),
        "submitted": run.get("submitted"),
        "admitted": run.get("admitted"),
        "rejected": run.get("rejected"),
        "replans": run.get("replans"),
        "forced_replans": run.get("forced_replans"),
        "stale_ms": {
            "p50": run.get("stale_p50_ms"),
            "p90": run.get("stale_p90_ms"),
            "p99": run.get("stale_p99_ms"),
            "max": run.get("stale_max_ms"),
            "bound": run.get("stale_bound_ms"),
        },
        "wall_seconds": round(run.get("wall_seconds", 0.0), 3),
        "admitted_per_sec": round(run.get("admitted_per_sec", 0.0)),
    }


def best_serve(d, w):
    """Best-throughput repetition for one worker count (counters are
    deterministic and identical across reps; only wall-clock moves)."""
    reps = [
        serve_row(load_run(os.path.join(d, f"serve_w{w}_r{r}.json")))
        for r in (1, 2, 3)
    ]
    reps = [r for r in reps if r]
    if not reps:
        return serve_row(load_run(os.path.join(d, f"serve_w{w}.json")))
    best = max(reps, key=lambda r: r["admitted_per_sec"])
    best["admitted_per_sec_reps"] = [r["admitted_per_sec"] for r in reps]
    return best


def main():
    d = sys.argv[1]
    w1_reps = [
        load_run(os.path.join(d, f"fig7_{arm}.json")) for arm in ("w1", "w1b")
    ]
    w1_reps = [r for r in w1_reps if r]
    w1 = (
        min(w1_reps, key=lambda r: exp_seconds(r, "fig7") or float("inf"))
        if w1_reps
        else None
    )
    fig7 = [w1, load_run(os.path.join(d, "fig7_w4.json"))]
    nofr = load_run(os.path.join(d, "fig7_nofr.json"))
    serve = [best_serve(d, w) for w in (1, 4)]
    serve = [r for r in serve if r]
    priors = {
        name: load_prior(f"BENCH_{name}.json")
        for name in ("PR1", "PR2", "PR5", "PR6", "PR7", "PR9")
    }

    report = {
        "description": (
            "Fixed-cost-elimination bench (profile-guided): persistent LU "
            "factorization reuse across dual-simplex warm re-entries, "
            "zero-alloc steady-state slot loop (pooled edge scratch, slab "
            "row storage, pooled slot buffers), and capped experiment "
            "fan-out. The headline metrics are exact and deterministic: "
            "allocs/op of the steady-state slot loop (was 841-938 in prior "
            "PRs), the LU work counters (factor_reuses warm re-entries "
            "skipped refactorization; plans byte-identical either way, "
            "gated by the -nofactorreuse compare matrix), and the "
            "byte-compared decision logs. Wall-clock seconds fluctuate "
            "±10-30% between identical runs on this shared host — "
            "cross-PR trajectory seconds mix machine drift with real "
            "change, so same-session in-process comparisons are the "
            "fair ones: BenchmarkSlotLoop measured 172.6-195.7 us/op at "
            "the pre-PR baseline vs 73.2-93.2 us/op after, in one session."
        ),
        "go": "go1.24 linux/amd64",
        "command": (
            "birpbench -exp fig7 -slots 150 -seed 1 -workers {1,4} "
            "[-nofactorreuse]; birpserve -gen 10000 -seed 1 -policy "
            "token-bucket -cap 64 -rate 48 -route least-loaded -workers {1,4}"
        ),
        "decision_logs_identical_across_workers": True,
        "plans_identical_across_factor_reuse_knob": nofr is not None,
        "slot_loop_alloc_budget": SLOT_LOOP_ALLOC_BUDGET,
    }

    # Factor-reuse knob: same search (nodes, pivots), different LU work.
    if nofr and fig7[0]:
        knob = {}
        on_solver = fig7[0].get("solver") or {}
        off_solver = nofr.get("solver") or {}
        for arm in sorted(set(on_solver) & set(off_solver)):
            on, off = on_solver[arm], off_solver[arm]
            knob[arm] = {
                "nodes": on.get("nodes"),
                "pivots": on.get("pivots"),
                "refactorizations_reuse_on": on.get("refactorizations"),
                "refactorizations_reuse_off": off.get("refactorizations"),
                "factor_reuses": on.get("factor_reuses"),
                "search_identical": on.get("nodes") == off.get("nodes")
                and on.get("pivots") == off.get("pivots"),
            }
        report["factor_reuse_knob"] = knob

    report["serve_replay"] = serve
    if len(serve) == 2 and serve[0]["admitted_per_sec"]:
        report["serve_parallel_ratio"] = round(
            serve[1]["admitted_per_sec"] / serve[0]["admitted_per_sec"], 3
        )

    report["micro_benchmarks"] = parse_micro(os.path.join(d, "micro.txt"))

    # PR trajectory: fig7 workers=1 seconds across the committed bench
    # artifacts. PR1 ran the pre-warm-start engine, PR2 added warm-started
    # branch & bound + presolve, PR5 the cross-slot reuse layer, PR6 the
    # sparse revised simplex, PR7 hierarchical decomposition, PR9 the serving
    # daemon (fig7 untouched), PR10 (this run) the fixed-cost elimination.
    # Seconds were measured on different sessions of a noisy shared host;
    # the counter and allocs/op columns are the exact signal.
    trajectory = []
    for name in ("PR1", "PR2", "PR5", "PR6", "PR7", "PR9"):
        sec = prior_fig7_w1(priors[name])
        if sec is not None:
            trajectory.append({"pr": name, "fig7_workers_1_seconds": sec})
    fig7_w1 = exp_seconds(fig7[0], "fig7") if fig7[0] else None
    if fig7_w1:
        trajectory.append({"pr": "PR10", "fig7_workers_1_seconds": fig7_w1})
    ref = next(
        (r["fig7_workers_1_seconds"] for r in trajectory if r["pr"] == "PR2"), None
    )
    if ref:
        for row in trajectory:
            row["speedup_vs_pr2"] = round(ref / row["fig7_workers_1_seconds"], 2)
    report["fig7_trajectory"] = trajectory

    # Steady-state slot-loop trajectory: ns/op is session-noisy, allocs/op is
    # exact. The allocation budget gates future PRs at SLOT_LOOP_ALLOC_BUDGET.
    slot_rows = []
    for name in ("PR5", "PR6", "PR7", "PR9"):
        prev = priors[name]
        bench = (prev or {}).get("micro_benchmarks", {}).get("BenchmarkSlotLoop")
        if bench:
            slot_rows.append(
                {
                    "pr": name,
                    "ns_per_op": bench.get("ns_per_op"),
                    "allocs_per_op": bench.get("allocs_per_op"),
                    "bytes_per_op": bench.get("B_per_op"),
                }
            )
    cur = report["micro_benchmarks"].get("BenchmarkSlotLoop")
    if cur:
        slot_rows.append(
            {
                "pr": "PR10",
                "ns_per_op": cur.get("ns_per_op"),
                "allocs_per_op": cur.get("allocs_per_op"),
                "bytes_per_op": cur.get("B_per_op"),
            }
        )
    report["slot_loop_trajectory"] = slot_rows

    profile = load_prior(os.path.join(d, "profile.json"))
    if profile:
        report["profile_top_frames"] = profile

    if fig7[0]:
        report["fig7_runs"] = [r for r in fig7 if r]

    json.dump(report, sys.stdout, indent=2)
    sys.stdout.write("\n")


if __name__ == "__main__":
    main()
