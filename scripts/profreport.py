#!/usr/bin/env python3
"""Summarize pprof profiles into a JSON fragment for the bench artifact.

Usage:
    profreport.py [-n TOPN] <profile.pprof> [more.pprof ...] > profile.json

Each argument is a profile written by `birpbench -profile cpu|heap|allocs`
(one `<exp>.<kind>.pprof` per experiment). For every file the report runs
`go tool pprof -top -cum` and extracts the top-N frames by cumulative
weight, so the bench artifact records *where* the run spent its CPU or its
allocations — the reproducible profiling workflow: re-run the same birpbench
command, re-run this script, diff the frame tables.

The pprof text table looks like

      flat  flat%   sum%        cum   cum%
     0.57s 17.70% 17.70%      0.60s 18.63%  repro/internal/lp.(*luFactor).solve

flat/cum units depend on the profile kind (seconds for cpu, bytes for
heap/allocs); both the raw strings and the percentages are kept so the JSON
stays unit-faithful without re-deriving pprof's formatting.
"""
import json
import os
import re
import subprocess
import sys

ROW = re.compile(
    r"^\s*(\S+)\s+([\d.]+)%\s+[\d.]+%\s+(\S+)\s+([\d.]+)%\s+(.+?)\s*$"
)
TOTAL = re.compile(r"([\d.]+\w*) total\s*$")


def top_frames(path, n):
    out = subprocess.run(
        ["go", "tool", "pprof", "-top", "-cum", f"-nodecount={n}", path],
        capture_output=True,
        text=True,
        check=True,
    ).stdout
    frames, total = [], None
    for line in out.splitlines():
        m = TOTAL.search(line)
        if m and total is None:
            total = m.group(1)
        m = ROW.match(line)
        if not m or m.group(5) == "%   cum%":
            continue
        frames.append(
            {
                "func": m.group(5),
                "flat": m.group(1),
                "flat_pct": float(m.group(2)),
                "cum": m.group(3),
                "cum_pct": float(m.group(4)),
            }
        )
    return {"total": total, "top_by_cum": frames}


def main():
    args = sys.argv[1:]
    n = 15
    if args and args[0] == "-n":
        n = int(args[1])
        args = args[2:]
    if not args:
        sys.exit("usage: profreport.py [-n TOPN] <profile.pprof>...")
    report = {}
    for path in args:
        # fig7.cpu.pprof -> key "fig7.cpu"
        key = os.path.basename(path)
        if key.endswith(".pprof"):
            key = key[: -len(".pprof")]
        report[key] = top_frames(path, n)
    json.dump(report, sys.stdout, indent=2)
    sys.stdout.write("\n")


if __name__ == "__main__":
    main()
