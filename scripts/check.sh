#!/usr/bin/env bash
# Repository gate: static checks, build, and the full test suite under the
# race detector. This is the tier-1 verify plus the concurrency checks the
# parallel solve engine requires; CI and pre-commit hooks should run this.
#
# Usage:
#   scripts/check.sh          # full gate (lint + race over every package)
#   scripts/check.sh -short   # quick tier: lint + build + short-mode race
#   scripts/check.sh -lint    # lint tier only: vet + gofmt + birplint
#   scripts/check.sh -bench   # solver bench tier: fig7 revised/dense engine ×
#                             # workers {1,4}, pivots per node, warm-fallback
#                             # rate, dual re-entry counters, slot-loop
#                             # allocs; writes BENCH_PR6.json
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "-bench" ]]; then
	tmp=$(mktemp -d)
	trap 'rm -rf "$tmp"' EXIT
	echo "== build birpbench"
	go build -o "$tmp/birpbench" ./cmd/birpbench
	slots=150
	for engine in revised dense; do
		flag=""
		if [[ $engine == dense ]]; then
			flag="-dense"
		fi
		for w in 1 4; do
			echo "== fig7 -slots $slots -workers $w engine=$engine"
			# shellcheck disable=SC2086
			"$tmp/birpbench" -exp fig7 -slots $slots -seed 1 -workers "$w" $flag \
				-solverstats -json "$tmp/${engine}_w$w.json" >"$tmp/out_${engine}_w$w.txt"
		done
		echo "== cross-worker output identity (engine=$engine)"
		# Strip the wall-clock trailer; everything else (figures, summaries,
		# solver counters) must match byte for byte across worker counts.
		sed '/ completed in /d' "$tmp/out_${engine}_w1.txt" >"$tmp/id_${engine}_w1.txt"
		sed '/ completed in /d' "$tmp/out_${engine}_w4.txt" >"$tmp/id_${engine}_w4.txt"
		cmp "$tmp/id_${engine}_w1.txt" "$tmp/id_${engine}_w4.txt"
	done
	echo "== micro-benches (warm vs cold, LP box solve, warm re-entry, slot-loop allocs)"
	go test . -run '^$' -bench 'BenchmarkWarmVsColdRelaxation' -benchtime 100x |
		tee "$tmp/micro.txt"
	go test ./internal/lp -run '^$' -bench 'BenchmarkBoundedBoxLP|BenchmarkWarmReentry' -benchmem |
		tee -a "$tmp/micro.txt"
	go test ./internal/core -run '^$' -bench 'BenchmarkSlotLoop' -benchtime 200x -benchmem |
		tee -a "$tmp/micro.txt"
	python3 scripts/benchreport.py "$tmp/revised_w1.json" "$tmp/revised_w4.json" \
		"$tmp/dense_w1.json" "$tmp/dense_w4.json" "$tmp/micro.txt" >BENCH_PR6.json
	echo "ok: wrote BENCH_PR6.json"
	exit 0
fi

short=""
if [[ "${1:-}" == "-short" ]]; then
	short="-short"
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== gofmt"
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

# The determinism linter runs in every tier, including -short: its findings
# are exactly the bugs the race detector and seeded tests can miss (map-order
# output, float equality, swallowed solver errors).
echo "== birplint ./..."
lint_tmp=$(mktemp -d)
trap 'rm -rf "$lint_tmp"' EXIT
lint_status=0
go run ./cmd/birplint -json ./... >"$lint_tmp/lint.json" || lint_status=$?
python3 scripts/lintreport.py "$lint_tmp/lint.json"
if [[ $lint_status -ne 0 ]]; then
	echo "birplint: unwaived findings (exit $lint_status); fix them or waive with //birplint:ignore" >&2
	exit "$lint_status"
fi

if [[ "${1:-}" == "-lint" ]]; then
	echo "ok: lint tier passed"
	exit 0
fi

# Race instrumentation slows the numeric hot paths ~10x, so the full gate
# gets a generous timeout for single-core machines.
echo "== go test -race $short ./..."
go test -race $short -timeout 45m ./...

echo "ok: all checks passed"
