#!/usr/bin/env bash
# Repository gate: static checks, build, and the full test suite under the
# race detector. This is the tier-1 verify plus the concurrency checks the
# parallel solve engine requires; CI and pre-commit hooks should run this.
#
# Usage:
#   scripts/check.sh          # full gate (race over every package)
#   scripts/check.sh -short   # quick tier: vet + build + short-mode race
set -euo pipefail
cd "$(dirname "$0")/.."

short=""
if [[ "${1:-}" == "-short" ]]; then
	short="-short"
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== gofmt"
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

# Race instrumentation slows the numeric hot paths ~10x, so the full gate
# gets a generous timeout for single-core machines.
echo "== go test -race $short ./..."
go test -race $short -timeout 45m ./...

echo "ok: all checks passed"
