#!/usr/bin/env bash
# Repository gate: static checks, build, and the full test suite under the
# race detector. This is the tier-1 verify plus the concurrency checks the
# parallel solve engine requires; CI and pre-commit hooks should run this.
#
# Usage:
#   scripts/check.sh          # full gate (lint + race over every package + serve smoke)
#   scripts/check.sh -short   # quick tier: lint + build + short-mode race + serve smoke
#   scripts/check.sh -lint    # lint tier only: vet + gofmt + birplint
#   scripts/check.sh -serve   # serving smoke tier only: 10k-request replay with
#                             # byte-identical decision logs across -workers {1,4},
#                             # accounting + staleness-bound assertions, and a TCP
#                             # daemon round trip with SIGINT clean shutdown
#   scripts/check.sh -bench   # bench tier: fig7 workers {1,4} trajectory anchor,
#                             # serve replay throughput + staleness percentiles,
#                             # micro-benches; writes BENCH_PR9.json
set -euo pipefail
cd "$(dirname "$0")/.."

# serve_smoke: the online-serving acceptance gate. The replay arm proves the
# determinism contract (same seed -> byte-identical decision log for any
# -workers value) and the counter invariants (every request accounted, max
# staleness within the bound); the daemon arm proves the TCP frontend serves
# round trips and shuts down cleanly on SIGINT.
serve_smoke() {
	local stmp
	stmp=$(mktemp -d)
	echo "== build birpserve"
	go build -o "$stmp/birpserve" ./cmd/birpserve

	echo "== serve replay 10k (workers 1 vs 4, byte-identical decision logs)"
	for w in 1 4; do
		"$stmp/birpserve" -gen 10000 -seed 1 -policy token-bucket -cap 64 -rate 48 \
			-route least-loaded -workers "$w" -log "$stmp/serve_w$w.log" \
			-json "$stmp/serve_w$w.json" >"$stmp/serve_w$w.txt"
	done
	cmp "$stmp/serve_w1.log" "$stmp/serve_w4.log"
	python3 - "$stmp/serve_w1.json" <<-'EOF'
		import json, sys
		o = json.load(open(sys.argv[1]))
		assert o["submitted"] == 10000, o["submitted"]
		assert o["submitted"] == o["admitted"] + o["rejected"], "accounting leak"
		assert o["admitted"] > 0, "nothing admitted"
		assert o["stale_max_ms"] <= o["stale_bound_ms"] + 1e-9, "staleness bound violated"
		print(f"ok: 10k requests accounted, stale max {o['stale_max_ms']:.1f}ms"
		      f" <= bound {o['stale_bound_ms']:.1f}ms")
	EOF

	echo "== serve daemon smoke (TCP round trip + SIGINT clean shutdown)"
	"$stmp/birpserve" -listen 127.0.0.1:0 -apps 1 >"$stmp/daemon.txt" 2>&1 &
	local pid=$! addr=""
	for _ in $(seq 100); do
		addr=$(sed -n 's/^serving on \(.*\) (SIGINT.*/\1/p' "$stmp/daemon.txt" | head -1)
		[[ -n "$addr" ]] && break
		sleep 0.1
	done
	if [[ -z "$addr" ]]; then
		kill "$pid" 2>/dev/null || true
		echo "daemon never announced its address" >&2
		exit 1
	fi
	python3 - "$addr" <<-'EOF'
		import json, socket, sys
		host, port = sys.argv[1].rsplit(":", 1)
		s = socket.create_connection((host, int(port)), timeout=5)
		f = s.makefile("rw")
		for q in range(5):
		    f.write(json.dumps({"id": q, "app": 0, "region": q % 3}) + "\n")
		    f.flush()
		    d = json.loads(f.readline())
		    assert d["id"] == q and d.get("admit"), d
		s.close()
		print("ok: 5 daemon round trips")
	EOF
	kill -INT "$pid"
	wait "$pid"
	grep -q "daemon: submitted 5 admitted 5" "$stmp/daemon.txt"
	rm -rf "$stmp"
	echo "ok: serve smoke passed"
}

if [[ "${1:-}" == "-serve" ]]; then
	serve_smoke
	exit 0
fi

if [[ "${1:-}" == "-bench" ]]; then
	tmp=$(mktemp -d)
	trap 'rm -rf "$tmp"' EXIT
	echo "== build birpbench + birpserve"
	go build -o "$tmp/birpbench" ./cmd/birpbench
	go build -o "$tmp/birpserve" ./cmd/birpserve

	# identical CONFIG: the two worker counts of one configuration must print
	# byte-identical stdout once the wall-clock trailer is stripped.
	identical() {
		sed '/ completed in /d' "$tmp/out_$1_w1.txt" >"$tmp/id_$1_w1.txt"
		sed '/ completed in /d' "$tmp/out_$1_w4.txt" >"$tmp/id_$1_w4.txt"
		cmp "$tmp/id_$1_w1.txt" "$tmp/id_$1_w4.txt"
	}

	echo "== fig7 -slots 150 (trajectory anchor, workers {1,4})"
	for w in 1 4; do
		"$tmp/birpbench" -exp fig7 -slots 150 -seed 1 -workers "$w" \
			-solverstats -json "$tmp/fig7_w$w.json" >"$tmp/out_fig7_w$w.txt"
	done
	identical fig7

	echo "== serve replay 10k (workers {1,4}, admitted/sec + staleness percentiles)"
	for w in 1 4; do
		"$tmp/birpserve" -gen 10000 -seed 1 -policy token-bucket -cap 64 -rate 48 \
			-route least-loaded -workers "$w" -log "$tmp/serve_w$w.log" \
			-json "$tmp/serve_w$w.json" >"$tmp/out_serve_w$w.txt"
	done
	cmp "$tmp/serve_w1.log" "$tmp/serve_w4.log"

	echo "== micro-benches (warm vs cold, LP box solve, warm re-entry, slot-loop allocs)"
	go test . -run '^$' -bench 'BenchmarkWarmVsColdRelaxation' -benchtime 100x |
		tee "$tmp/micro.txt"
	go test ./internal/lp -run '^$' -bench 'BenchmarkBoundedBoxLP|BenchmarkWarmReentry' -benchmem |
		tee -a "$tmp/micro.txt"
	go test ./internal/core -run '^$' -bench 'BenchmarkSlotLoop' -benchtime 200x -benchmem |
		tee -a "$tmp/micro.txt"
	python3 scripts/benchreport.py "$tmp" >BENCH_PR9.json
	echo "ok: wrote BENCH_PR9.json"
	exit 0
fi

short=""
if [[ "${1:-}" == "-short" ]]; then
	short="-short"
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== gofmt"
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

# The determinism linter runs in every tier, including -short: its findings
# are exactly the bugs the race detector and seeded tests can miss (map-order
# output, float equality, swallowed solver errors). The -short tier lints only
# the files changed since HEAD (tracked edits plus untracked .go files) via
# birplint -changed; an empty change list or no usable git falls back to the
# full module so the quick tier never silently skips the gate.
lint_tmp=$(mktemp -d)
trap 'rm -rf "$lint_tmp"' EXIT
lint_status=0
changed=""
if [[ -n "$short" ]] && command -v git >/dev/null && git rev-parse --is-inside-work-tree >/dev/null 2>&1; then
	# testdata fixtures deliberately seed findings and are excluded from the
	# gate, same as the full-module walk excludes them.
	changed=$( (git diff --name-only HEAD -- '*.go'; git ls-files --others --exclude-standard -- '*.go') |
		grep -v '/testdata/' | sort -u || true)
fi
if [[ -n "$changed" ]]; then
	echo "== birplint -changed ($(wc -l <<<"$changed") files)"
	go run ./cmd/birplint -changed -json - <<<"$changed" >"$lint_tmp/lint.json" || lint_status=$?
else
	echo "== birplint ./..."
	go run ./cmd/birplint -json ./... >"$lint_tmp/lint.json" || lint_status=$?
fi
python3 scripts/lintreport.py "$lint_tmp/lint.json"
if [[ $lint_status -ne 0 ]]; then
	echo "birplint: unwaived findings (exit $lint_status); fix them or waive with //birplint:ignore" >&2
	exit "$lint_status"
fi

if [[ "${1:-}" == "-lint" ]]; then
	echo "ok: lint tier passed"
	exit 0
fi

# Race instrumentation slows the numeric hot paths ~10x, so the full gate
# gets a generous timeout for single-core machines.
echo "== go test -race $short ./..."
go test -race $short -timeout 45m ./...

serve_smoke

echo "ok: all checks passed"
