#!/usr/bin/env bash
# Repository gate: static checks, build, and the full test suite under the
# race detector. This is the tier-1 verify plus the concurrency checks the
# parallel solve engine requires; CI and pre-commit hooks should run this.
#
# Usage:
#   scripts/check.sh          # full gate (lint + race over every package + serve smoke)
#   scripts/check.sh -short   # quick tier: lint + build + short-mode race + serve smoke
#   scripts/check.sh -lint    # lint tier only: vet + gofmt + birplint
#   scripts/check.sh -serve   # serving smoke tier only: 10k-request replay with
#                             # byte-identical decision logs across -workers {1,4},
#                             # accounting + staleness-bound assertions, and a TCP
#                             # daemon round trip with SIGINT clean shutdown
#   scripts/check.sh -bench   # bench tier: fig7 workers {1,4} + factor-reuse
#                             # knob byte-compare matrix, serve replay
#                             # throughput + staleness percentiles, micro-benches
#                             # with the slot-loop allocs/op gate, CPU/allocs
#                             # profile capture; writes BENCH_PR10.json
set -euo pipefail
cd "$(dirname "$0")/.."

# serve_smoke: the online-serving acceptance gate. The replay arm proves the
# determinism contract (same seed -> byte-identical decision log for any
# -workers value) and the counter invariants (every request accounted, max
# staleness within the bound); the daemon arm proves the TCP frontend serves
# round trips and shuts down cleanly on SIGINT.
serve_smoke() {
	local stmp
	stmp=$(mktemp -d)
	echo "== build birpserve"
	go build -o "$stmp/birpserve" ./cmd/birpserve

	echo "== serve replay 10k (workers 1 vs 4, byte-identical decision logs)"
	for w in 1 4; do
		"$stmp/birpserve" -gen 10000 -seed 1 -policy token-bucket -cap 64 -rate 48 \
			-route least-loaded -workers "$w" -log "$stmp/serve_w$w.log" \
			-json "$stmp/serve_w$w.json" >"$stmp/serve_w$w.txt"
	done
	cmp "$stmp/serve_w1.log" "$stmp/serve_w4.log"
	python3 - "$stmp/serve_w1.json" <<-'EOF'
		import json, sys
		o = json.load(open(sys.argv[1]))
		assert o["submitted"] == 10000, o["submitted"]
		assert o["submitted"] == o["admitted"] + o["rejected"], "accounting leak"
		assert o["admitted"] > 0, "nothing admitted"
		assert o["stale_max_ms"] <= o["stale_bound_ms"] + 1e-9, "staleness bound violated"
		print(f"ok: 10k requests accounted, stale max {o['stale_max_ms']:.1f}ms"
		      f" <= bound {o['stale_bound_ms']:.1f}ms")
	EOF

	echo "== serve daemon smoke (TCP round trip + SIGINT clean shutdown)"
	"$stmp/birpserve" -listen 127.0.0.1:0 -apps 1 >"$stmp/daemon.txt" 2>&1 &
	local pid=$! addr=""
	for _ in $(seq 100); do
		addr=$(sed -n 's/^serving on \(.*\) (SIGINT.*/\1/p' "$stmp/daemon.txt" | head -1)
		[[ -n "$addr" ]] && break
		sleep 0.1
	done
	if [[ -z "$addr" ]]; then
		kill "$pid" 2>/dev/null || true
		echo "daemon never announced its address" >&2
		exit 1
	fi
	python3 - "$addr" <<-'EOF'
		import json, socket, sys
		host, port = sys.argv[1].rsplit(":", 1)
		s = socket.create_connection((host, int(port)), timeout=5)
		f = s.makefile("rw")
		for q in range(5):
		    f.write(json.dumps({"id": q, "app": 0, "region": q % 3}) + "\n")
		    f.flush()
		    d = json.loads(f.readline())
		    assert d["id"] == q and d.get("admit"), d
		s.close()
		print("ok: 5 daemon round trips")
	EOF
	kill -INT "$pid"
	wait "$pid"
	grep -q "daemon: submitted 5 admitted 5" "$stmp/daemon.txt"
	rm -rf "$stmp"
	echo "ok: serve smoke passed"
}

if [[ "${1:-}" == "-serve" ]]; then
	serve_smoke
	exit 0
fi

if [[ "${1:-}" == "-bench" ]]; then
	tmp=$(mktemp -d)
	trap 'rm -rf "$tmp"' EXIT
	echo "== build birpbench + birpserve"
	go build -o "$tmp/birpbench" ./cmd/birpbench
	go build -o "$tmp/birpserve" ./cmd/birpserve

	# identical CONFIG: the two worker counts of one configuration must print
	# byte-identical stdout once the wall-clock trailer is stripped.
	identical() {
		sed '/ completed in /d' "$tmp/out_$1_w1.txt" >"$tmp/id_$1_w1.txt"
		sed '/ completed in /d' "$tmp/out_$1_w4.txt" >"$tmp/id_$1_w4.txt"
		cmp "$tmp/id_$1_w1.txt" "$tmp/id_$1_w4.txt"
	}

	# The trajectory anchor is wall-clock on a shared host (±10-30% between
	# identical runs), so the workers=1 arm runs twice and the report keeps
	# the faster one; both repetitions must print byte-identical results.
	echo "== fig7 -slots 150 (trajectory anchor, workers {1,4}, min-of-2 serial)"
	for arm in w1 w1b w4; do
		w=1
		[[ "$arm" == w4 ]] && w=4
		"$tmp/birpbench" -exp fig7 -slots 150 -seed 1 -workers "$w" \
			-solverstats -json "$tmp/fig7_$arm.json" >"$tmp/out_fig7_$arm.txt"
	done
	identical fig7
	sed '/ completed in /d' "$tmp/out_fig7_w1b.txt" >"$tmp/id_fig7_w1b.txt"
	cmp "$tmp/id_fig7_w1.txt" "$tmp/id_fig7_w1b.txt"

	# Factor-reuse knob matrix: -nofactorreuse may only move the two LU work
	# counters (refactor=, factor-reuse=); plans, losses, node and pivot
	# counts must be byte-identical. Normalize exactly those two fields and
	# the wall-clock trailer, then demand identity with the workers=1 run.
	echo "== fig7 -nofactorreuse (knob byte-compare: plans and search identical)"
	"$tmp/birpbench" -exp fig7 -slots 150 -seed 1 -workers 1 -nofactorreuse \
		-solverstats -json "$tmp/fig7_nofr.json" >"$tmp/out_fig7_nofr.txt"
	for f in out_fig7_w1 out_fig7_nofr; do
		sed -e '/ completed in /d' \
			-e 's/refactor=[0-9]*/refactor=_/g' \
			-e 's/factor-reuse=[0-9]*/factor-reuse=_/g' \
			"$tmp/$f.txt" >"$tmp/knob_$f.txt"
	done
	cmp "$tmp/knob_out_fig7_w1.txt" "$tmp/knob_out_fig7_nofr.txt"

	# Throughput is wall-clock: three repetitions per worker count, report
	# keeps the best; every repetition's decision log must be byte-identical
	# (within a worker count and across worker counts).
	echo "== serve replay 10k (workers {1,4} x3, admitted/sec + staleness percentiles)"
	for w in 1 4; do
		for r in 1 2 3; do
			"$tmp/birpserve" -gen 10000 -seed 1 -policy token-bucket -cap 64 -rate 48 \
				-route least-loaded -workers "$w" -log "$tmp/serve_w${w}_r$r.log" \
				-json "$tmp/serve_w${w}_r$r.json" >"$tmp/out_serve_w${w}_r$r.txt"
		done
		cmp "$tmp/serve_w${w}_r1.log" "$tmp/serve_w${w}_r2.log"
		cmp "$tmp/serve_w${w}_r1.log" "$tmp/serve_w${w}_r3.log"
	done
	cmp "$tmp/serve_w1_r1.log" "$tmp/serve_w4_r1.log"

	echo "== micro-benches (warm vs cold, LP box solve, warm re-entry, slot-loop allocs)"
	go test . -run '^$' -bench 'BenchmarkWarmVsColdRelaxation' -benchtime 100x |
		tee "$tmp/micro.txt"
	go test ./internal/lp -run '^$' -bench 'BenchmarkBoundedBoxLP|BenchmarkWarmReentry' -benchmem |
		tee -a "$tmp/micro.txt"
	go test ./internal/core -run '^$' -bench 'BenchmarkSlotLoop' -benchtime 200x -benchmem |
		tee -a "$tmp/micro.txt"

	# Alloc gate: the steady-state slot loop must stay within the recorded
	# allocs/op budget (TestSlotLoopAllocBudget enforces the same ceiling
	# in-process; this guards the bench artifact itself).
	python3 - "$tmp/micro.txt" <<-'EOF'
		import re, sys
		BUDGET = 300
		for line in open(sys.argv[1]):
		    m = re.match(r"^BenchmarkSlotLoop\b.* (\d+) allocs/op", line)
		    if m:
		        allocs = int(m.group(1))
		        assert allocs <= BUDGET, f"slot loop {allocs} allocs/op > budget {BUDGET}"
		        print(f"ok: slot loop {allocs} allocs/op <= budget {BUDGET}")
		        break
		else:
		    sys.exit("BenchmarkSlotLoop missing from micro.txt")
	EOF

	echo "== profile capture (quick fig7, cpu + allocs) + frame report"
	"$tmp/birpbench" -exp fig7 -quick -profile cpu -profdir "$tmp" >/dev/null
	"$tmp/birpbench" -exp fig7 -quick -profile allocs -profdir "$tmp" >/dev/null
	python3 scripts/profreport.py -n 12 "$tmp/fig7.cpu.pprof" "$tmp/fig7.allocs.pprof" \
		>"$tmp/profile.json"

	python3 scripts/benchreport.py "$tmp" >BENCH_PR10.json
	echo "ok: wrote BENCH_PR10.json"
	exit 0
fi

short=""
if [[ "${1:-}" == "-short" ]]; then
	short="-short"
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== gofmt"
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

# The determinism linter runs in every tier, including -short: its findings
# are exactly the bugs the race detector and seeded tests can miss (map-order
# output, float equality, swallowed solver errors). The -short tier lints only
# the files changed since HEAD (tracked edits plus untracked .go files) via
# birplint -changed; an empty change list or no usable git falls back to the
# full module so the quick tier never silently skips the gate.
lint_tmp=$(mktemp -d)
trap 'rm -rf "$lint_tmp"' EXIT
lint_status=0
changed=""
if [[ -n "$short" ]] && command -v git >/dev/null && git rev-parse --is-inside-work-tree >/dev/null 2>&1; then
	# testdata fixtures deliberately seed findings and are excluded from the
	# gate, same as the full-module walk excludes them.
	changed=$( (git diff --name-only HEAD -- '*.go'; git ls-files --others --exclude-standard -- '*.go') |
		grep -v '/testdata/' | sort -u || true)
fi
if [[ -n "$changed" ]]; then
	echo "== birplint -changed ($(wc -l <<<"$changed") files)"
	go run ./cmd/birplint -changed -json - <<<"$changed" >"$lint_tmp/lint.json" || lint_status=$?
else
	echo "== birplint ./..."
	go run ./cmd/birplint -json ./... >"$lint_tmp/lint.json" || lint_status=$?
fi
python3 scripts/lintreport.py "$lint_tmp/lint.json"
if [[ $lint_status -ne 0 ]]; then
	echo "birplint: unwaived findings (exit $lint_status); fix them or waive with //birplint:ignore" >&2
	exit "$lint_status"
fi

if [[ "${1:-}" == "-lint" ]]; then
	echo "ok: lint tier passed"
	exit 0
fi

# Race instrumentation slows the numeric hot paths ~10x, so the full gate
# gets a generous timeout for single-core machines.
echo "== go test -race $short ./..."
go test -race $short -timeout 45m ./...

serve_smoke

echo "ok: all checks passed"
