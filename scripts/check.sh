#!/usr/bin/env bash
# Repository gate: static checks, build, and the full test suite under the
# race detector. This is the tier-1 verify plus the concurrency checks the
# parallel solve engine requires; CI and pre-commit hooks should run this.
#
# Usage:
#   scripts/check.sh          # full gate (lint + race over every package)
#   scripts/check.sh -short   # quick tier: lint + build + short-mode race
#   scripts/check.sh -lint    # lint tier only: vet + gofmt + birplint
#   scripts/check.sh -bench   # K-scaling bench tier: fig7 workers {1,4} plus
#                             # the monolithic vs hierarchical fleet-scaling
#                             # matrix at K {6,50,500} × workers {1,4}, with
#                             # cross-worker byte-identity checks per config;
#                             # writes BENCH_PR7.json
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "-bench" ]]; then
	tmp=$(mktemp -d)
	trap 'rm -rf "$tmp"' EXIT
	echo "== build birpbench"
	go build -o "$tmp/birpbench" ./cmd/birpbench

	# identical CONFIG: the two worker counts of one configuration must print
	# byte-identical stdout once the wall-clock trailer is stripped.
	identical() {
		sed '/ completed in /d' "$tmp/out_$1_w1.txt" >"$tmp/id_$1_w1.txt"
		sed '/ completed in /d' "$tmp/out_$1_w4.txt" >"$tmp/id_$1_w4.txt"
		cmp "$tmp/id_$1_w1.txt" "$tmp/id_$1_w4.txt"
	}

	echo "== fig7 -slots 150 (trajectory anchor, workers {1,4})"
	for w in 1 4; do
		"$tmp/birpbench" -exp fig7 -slots 150 -seed 1 -workers "$w" \
			-solverstats -json "$tmp/fig7_w$w.json" >"$tmp/out_fig7_w$w.txt"
	done
	identical fig7

	# Fleet-scaling matrix. Horizons shrink as K grows so every cell stays
	# tractable; the monolithic K=500 arm gets one slot and a hard timeout —
	# recording a DNF there is an honest result, not a failure.
	scale() { # name k slots extra...
		local name=$1 k=$2 slots=$3
		shift 3
		for w in 1 4; do
			echo "== scale K=$k slots=$slots workers=$w $name"
			"$tmp/birpbench" -exp scale -k "$k" -slots "$slots" -seed 1 -workers "$w" "$@" \
				-json "$tmp/${name}_w$w.json" >"$tmp/out_${name}_w$w.txt"
		done
		identical "$name"
	}
	scale k6_mono 6 40
	scale k6_hier 6 40 -domains 3
	scale k50_mono 50 8
	scale k50_hier 50 8 -hier
	scale k500_hier 500 3 -hier
	echo "== scale K=500 slots=1 workers=1 monolithic (timeout 600s; DNF is a result)"
	if ! timeout 600 "$tmp/birpbench" -exp scale -k 500 -slots 1 -seed 1 -workers 1 \
		-json "$tmp/k500_mono_w1.json" >"$tmp/out_k500_mono_w1.txt"; then
		echo "monolithic K=500 did not finish within 600s (recorded as DNF)"
		rm -f "$tmp/k500_mono_w1.json"
	fi

	echo "== micro-benches (warm vs cold, LP box solve, warm re-entry, slot-loop allocs)"
	go test . -run '^$' -bench 'BenchmarkWarmVsColdRelaxation' -benchtime 100x |
		tee "$tmp/micro.txt"
	go test ./internal/lp -run '^$' -bench 'BenchmarkBoundedBoxLP|BenchmarkWarmReentry' -benchmem |
		tee -a "$tmp/micro.txt"
	go test ./internal/core -run '^$' -bench 'BenchmarkSlotLoop' -benchtime 200x -benchmem |
		tee -a "$tmp/micro.txt"
	python3 scripts/benchreport.py "$tmp" >BENCH_PR7.json
	echo "ok: wrote BENCH_PR7.json"
	exit 0
fi

short=""
if [[ "${1:-}" == "-short" ]]; then
	short="-short"
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== gofmt"
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

# The determinism linter runs in every tier, including -short: its findings
# are exactly the bugs the race detector and seeded tests can miss (map-order
# output, float equality, swallowed solver errors). The -short tier lints only
# the files changed since HEAD (tracked edits plus untracked .go files) via
# birplint -changed; an empty change list or no usable git falls back to the
# full module so the quick tier never silently skips the gate.
lint_tmp=$(mktemp -d)
trap 'rm -rf "$lint_tmp"' EXIT
lint_status=0
changed=""
if [[ -n "$short" ]] && command -v git >/dev/null && git rev-parse --is-inside-work-tree >/dev/null 2>&1; then
	# testdata fixtures deliberately seed findings and are excluded from the
	# gate, same as the full-module walk excludes them.
	changed=$( (git diff --name-only HEAD -- '*.go'; git ls-files --others --exclude-standard -- '*.go') |
		grep -v '/testdata/' | sort -u || true)
fi
if [[ -n "$changed" ]]; then
	echo "== birplint -changed ($(wc -l <<<"$changed") files)"
	go run ./cmd/birplint -changed -json - <<<"$changed" >"$lint_tmp/lint.json" || lint_status=$?
else
	echo "== birplint ./..."
	go run ./cmd/birplint -json ./... >"$lint_tmp/lint.json" || lint_status=$?
fi
python3 scripts/lintreport.py "$lint_tmp/lint.json"
if [[ $lint_status -ne 0 ]]; then
	echo "birplint: unwaived findings (exit $lint_status); fix them or waive with //birplint:ignore" >&2
	exit "$lint_status"
fi

if [[ "${1:-}" == "-lint" ]]; then
	echo "ok: lint tier passed"
	exit 0
fi

# Race instrumentation slows the numeric hot paths ~10x, so the full gate
# gets a generous timeout for single-core machines.
echo "== go test -race $short ./..."
go test -race $short -timeout 45m ./...

echo "ok: all checks passed"
