// Benchmark harness: one benchmark per paper table/figure plus the ablation
// benches DESIGN.md calls out. Figure benches run reduced ("quick") horizons
// so `go test -bench=.` finishes in minutes; cmd/birpbench regenerates the
// full 300-slot evaluation. Custom metrics report the experiment outcomes
// (loss, p%) alongside the timing so regressions in either show up in the
// same place.
package birp_test

import (
	"io"
	"testing"

	birp "repro"
	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/edgesim"
	"repro/internal/models"
	"repro/internal/trace"
)

// BenchmarkTable1 regenerates Table 1 (serial utilization and FPS).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := birp.Table1(io.Discard)
		if len(rows) != 8 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkFig2 regenerates Fig. 2 (TIR measurement + piecewise fits).
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		panels, err := birp.Fig2(io.Discard, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(panels) != 3 {
			b.Fatal("panel count")
		}
	}
}

// BenchmarkFig4 regenerates the ΔLoss(ε1, ε2) preset sweep (quick grid).
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := birp.PresetSweep(io.Discard, birp.ExperimentOptions{Quick: true, Slots: 20}, []int{10, 20})
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) == 0 {
			b.Fatal("no sweep points")
		}
	}
}

// BenchmarkFig5 regenerates the p%(ε1, ε2) preset sweep (quick grid); it
// shares the sweep engine with Fig. 4 but reports the failure surface.
func BenchmarkFig5(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		pts, err := birp.PresetSweep(io.Discard, birp.ExperimentOptions{Quick: true, Slots: 20}, []int{20})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.FailPct[20] > worst {
				worst = p.FailPct[20]
			}
		}
	}
	b.ReportMetric(worst, "worst-p%")
}

// BenchmarkFig6 regenerates the small-scale comparison (quick horizon).
func BenchmarkFig6(b *testing.B) {
	var birpP, oaeiP float64
	for i := 0; i < b.N; i++ {
		results, err := birp.Fig6(io.Discard, birp.ExperimentOptions{Quick: true, Slots: 40})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			switch r.Name {
			case "BIRP":
				birpP = 100 * r.FailureRate
			case "OAEI":
				oaeiP = 100 * r.FailureRate
			}
		}
	}
	b.ReportMetric(birpP, "BIRP-p%")
	b.ReportMetric(oaeiP, "OAEI-p%")
}

// BenchmarkFig7 regenerates the large-scale comparison (quick horizon).
func BenchmarkFig7(b *testing.B) {
	var lossRatio float64
	for i := 0; i < b.N; i++ {
		results, err := birp.Fig7(io.Discard, birp.ExperimentOptions{Quick: true, Slots: 30})
		if err != nil {
			b.Fatal(err)
		}
		var birpLoss, oaeiLoss float64
		for _, r := range results {
			switch r.Name {
			case "BIRP":
				birpLoss = r.TotalLoss()
			case "OAEI":
				oaeiLoss = r.TotalLoss()
			}
		}
		if oaeiLoss > 0 {
			lossRatio = birpLoss / oaeiLoss
		}
	}
	b.ReportMetric(lossRatio, "loss-ratio-vs-OAEI")
}

// ablationRun executes a configured BIRP variant on a fixed workload and
// returns (total loss, failure rate).
func ablationRun(b *testing.B, mod func(*core.Config)) (float64, float64) {
	b.Helper()
	c := cluster.Small()
	apps := models.Catalogue(2, 3)
	cfg := core.Config{Cluster: c, Apps: apps}
	if mod != nil {
		mod(&cfg)
	}
	s, err := core.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := trace.Generate(trace.Config{
		Apps: 2, Edges: c.N(), Slots: 40, Seed: 5,
		MeanPerSlot: 45, Imbalance: 0.8, BurstProb: 0.05, BurstScale: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	sim, err := edgesim.New(edgesim.Config{Cluster: c, Apps: apps, NoiseSigma: 0.02, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	res, err := sim.Run(s, tr.R)
	if err != nil {
		b.Fatal(err)
	}
	return res.Loss.Total(), res.FailureRate()
}

// BenchmarkAblationLCB compares the corrected LCB padding (default) against
// the paper-literal Eq. 17/22 rule whose padding grows without bound for
// sub-threshold plateaus.
func BenchmarkAblationLCB(b *testing.B) {
	var lossFixed, lossLiteral float64
	for i := 0; i < b.N; i++ {
		lossFixed, _ = ablationRun(b, nil)
		lossLiteral, _ = ablationRun(b, func(cfg *core.Config) {
			tuner := core.NewOnlineTuner(0.04, 0.07)
			tuner.LiteralEq22 = true
			cfg.Provider = tuner
		})
	}
	b.ReportMetric(lossFixed, "loss-fixed")
	b.ReportMetric(lossLiteral, "loss-literal")
}

// BenchmarkAblationPiecewise compares the default multi-batch execution
// against the paper-literal single-batch knee cap (Eq. 11/12).
func BenchmarkAblationPiecewise(b *testing.B) {
	var lossMulti, lossCap float64
	for i := 0; i < b.N; i++ {
		lossMulti, _ = ablationRun(b, nil)
		lossCap, _ = ablationRun(b, func(cfg *core.Config) { cfg.KneeCap = true })
	}
	b.ReportMetric(lossMulti, "loss-multibatch")
	b.ReportMetric(lossCap, "loss-kneecap")
}

// BenchmarkAblationMemModel compares the time-sliced Eq. 6 reading (default)
// against the literal summed-activation constraint.
func BenchmarkAblationMemModel(b *testing.B) {
	var lossTS, lossSum float64
	for i := 0; i < b.N; i++ {
		lossTS, _ = ablationRun(b, nil)
		lossSum, _ = ablationRun(b, func(cfg *core.Config) { cfg.Mem = core.MemSum })
	}
	b.ReportMetric(lossTS, "loss-timesliced")
	b.ReportMetric(lossSum, "loss-eq6sum")
}

// BenchmarkAblationSolver compares the scalable decomposed solver (default)
// against the exact joint program on the small-scale system.
func BenchmarkAblationSolver(b *testing.B) {
	var lossDec, lossJoint float64
	for i := 0; i < b.N; i++ {
		lossDec, _ = ablationRun(b, nil)
		lossJoint, _ = ablationRun(b, func(cfg *core.Config) { cfg.SolveMode = core.SolveModeJoint })
	}
	b.ReportMetric(lossDec, "loss-decomposed")
	b.ReportMetric(lossJoint, "loss-joint")
}

// BenchmarkDecideLargeScale measures one scheduling decision at the paper's
// large-scale configuration (the per-slot latency budget of the system).
func BenchmarkDecideLargeScale(b *testing.B) {
	c := cluster.Default()
	apps := models.Catalogue(5, 5)
	s, err := core.New(core.Config{Cluster: c, Apps: apps})
	if err != nil {
		b.Fatal(err)
	}
	tr, err := trace.Generate(trace.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Decide(i, tr.R[i%tr.Slots]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOAEIDecide measures the baseline's per-slot decision for
// comparison with BenchmarkDecideLargeScale.
func BenchmarkOAEIDecide(b *testing.B) {
	c := cluster.Default()
	apps := models.Catalogue(5, 5)
	o, err := baseline.NewOAEI(c, apps, 1)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := trace.Generate(trace.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.Decide(i, tr.R[i%tr.Slots]); err != nil {
			b.Fatal(err)
		}
	}
}
