// Benchmark harness: one benchmark per paper table/figure plus the ablation
// benches DESIGN.md calls out. Figure benches run reduced ("quick") horizons
// so `go test -bench=.` finishes in minutes; cmd/birpbench regenerates the
// full 300-slot evaluation. Custom metrics report the experiment outcomes
// (loss, p%) alongside the timing so regressions in either show up in the
// same place.
package birp_test

import (
	"io"
	"math/rand"
	"testing"

	birp "repro"
	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/edgesim"
	"repro/internal/miqp"
	"repro/internal/models"
	"repro/internal/trace"
)

// BenchmarkTable1 regenerates Table 1 (serial utilization and FPS).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := birp.Table1(io.Discard)
		if len(rows) != 8 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkFig2 regenerates Fig. 2 (TIR measurement + piecewise fits).
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		panels, err := birp.Fig2(io.Discard, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(panels) != 3 {
			b.Fatal("panel count")
		}
	}
}

// BenchmarkFig4 regenerates the ΔLoss(ε1, ε2) preset sweep (quick grid).
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := birp.PresetSweep(io.Discard, birp.ExperimentOptions{Quick: true, Slots: 20}, []int{10, 20})
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) == 0 {
			b.Fatal("no sweep points")
		}
	}
}

// BenchmarkFig5 regenerates the p%(ε1, ε2) preset sweep (quick grid); it
// shares the sweep engine with Fig. 4 but reports the failure surface.
func BenchmarkFig5(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		pts, err := birp.PresetSweep(io.Discard, birp.ExperimentOptions{Quick: true, Slots: 20}, []int{20})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.FailPct[20] > worst {
				worst = p.FailPct[20]
			}
		}
	}
	b.ReportMetric(worst, "worst-p%")
}

// BenchmarkFig6 regenerates the small-scale comparison (quick horizon).
func BenchmarkFig6(b *testing.B) {
	var birpP, oaeiP float64
	for i := 0; i < b.N; i++ {
		results, err := birp.Fig6(io.Discard, birp.ExperimentOptions{Quick: true, Slots: 40})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			switch r.Name {
			case "BIRP":
				birpP = 100 * r.FailureRate
			case "OAEI":
				oaeiP = 100 * r.FailureRate
			}
		}
	}
	b.ReportMetric(birpP, "BIRP-p%")
	b.ReportMetric(oaeiP, "OAEI-p%")
}

// BenchmarkFig7 regenerates the large-scale comparison (quick horizon).
func BenchmarkFig7(b *testing.B) {
	var lossRatio float64
	for i := 0; i < b.N; i++ {
		results, err := birp.Fig7(io.Discard, birp.ExperimentOptions{Quick: true, Slots: 30})
		if err != nil {
			b.Fatal(err)
		}
		var birpLoss, oaeiLoss float64
		for _, r := range results {
			switch r.Name {
			case "BIRP":
				birpLoss = r.TotalLoss()
			case "OAEI":
				oaeiLoss = r.TotalLoss()
			}
		}
		if oaeiLoss > 0 {
			lossRatio = birpLoss / oaeiLoss
		}
	}
	b.ReportMetric(lossRatio, "loss-ratio-vs-OAEI")
}

// ablationRun executes a configured BIRP variant on a fixed workload and
// returns (total loss, failure rate).
func ablationRun(b *testing.B, mod func(*core.Config)) (float64, float64) {
	b.Helper()
	c := cluster.Small()
	apps := models.Catalogue(2, 3)
	cfg := core.Config{Cluster: c, Apps: apps}
	if mod != nil {
		mod(&cfg)
	}
	s, err := core.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := trace.Generate(trace.Config{
		Apps: 2, Edges: c.N(), Slots: 40, Seed: 5,
		MeanPerSlot: 45, Imbalance: 0.8, BurstProb: 0.05, BurstScale: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	sim, err := edgesim.New(edgesim.Config{Cluster: c, Apps: apps, NoiseSigma: 0.02, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	res, err := sim.Run(s, tr.R)
	if err != nil {
		b.Fatal(err)
	}
	return res.Loss.Total(), res.FailureRate()
}

// BenchmarkAblationLCB compares the corrected LCB padding (default) against
// the paper-literal Eq. 17/22 rule whose padding grows without bound for
// sub-threshold plateaus.
func BenchmarkAblationLCB(b *testing.B) {
	var lossFixed, lossLiteral float64
	for i := 0; i < b.N; i++ {
		lossFixed, _ = ablationRun(b, nil)
		lossLiteral, _ = ablationRun(b, func(cfg *core.Config) {
			tuner := core.NewOnlineTuner(0.04, 0.07)
			tuner.LiteralEq22 = true
			cfg.Provider = tuner
		})
	}
	b.ReportMetric(lossFixed, "loss-fixed")
	b.ReportMetric(lossLiteral, "loss-literal")
}

// BenchmarkAblationPiecewise compares the default multi-batch execution
// against the paper-literal single-batch knee cap (Eq. 11/12).
func BenchmarkAblationPiecewise(b *testing.B) {
	var lossMulti, lossCap float64
	for i := 0; i < b.N; i++ {
		lossMulti, _ = ablationRun(b, nil)
		lossCap, _ = ablationRun(b, func(cfg *core.Config) { cfg.KneeCap = true })
	}
	b.ReportMetric(lossMulti, "loss-multibatch")
	b.ReportMetric(lossCap, "loss-kneecap")
}

// BenchmarkAblationMemModel compares the time-sliced Eq. 6 reading (default)
// against the literal summed-activation constraint.
func BenchmarkAblationMemModel(b *testing.B) {
	var lossTS, lossSum float64
	for i := 0; i < b.N; i++ {
		lossTS, _ = ablationRun(b, nil)
		lossSum, _ = ablationRun(b, func(cfg *core.Config) { cfg.Mem = core.MemSum })
	}
	b.ReportMetric(lossTS, "loss-timesliced")
	b.ReportMetric(lossSum, "loss-eq6sum")
}

// BenchmarkAblationSolver compares the scalable decomposed solver (default)
// against the exact joint program on the small-scale system.
func BenchmarkAblationSolver(b *testing.B) {
	var lossDec, lossJoint float64
	for i := 0; i < b.N; i++ {
		lossDec, _ = ablationRun(b, nil)
		lossJoint, _ = ablationRun(b, func(cfg *core.Config) { cfg.SolveMode = core.SolveModeJoint })
	}
	b.ReportMetric(lossDec, "loss-decomposed")
	b.ReportMetric(lossJoint, "loss-joint")
}

// BenchmarkDecideLargeScale measures one scheduling decision at the paper's
// large-scale configuration (the per-slot latency budget of the system).
func BenchmarkDecideLargeScale(b *testing.B) {
	c := cluster.Default()
	apps := models.Catalogue(5, 5)
	s, err := core.New(core.Config{Cluster: c, Apps: apps})
	if err != nil {
		b.Fatal(err)
	}
	tr, err := trace.Generate(trace.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Decide(i, tr.R[i%tr.Slots]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOAEIDecide measures the baseline's per-slot decision for
// comparison with BenchmarkDecideLargeScale.
func BenchmarkOAEIDecide(b *testing.B) {
	c := cluster.Default()
	apps := models.Catalogue(5, 5)
	o, err := baseline.NewOAEI(c, apps, 1)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := trace.Generate(trace.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.Decide(i, tr.R[i%tr.Slots]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWarmVsColdRelaxation isolates the solver-engine speedup this PR
// claims: the same seeded MILP batch solved by the accelerated engine
// (warm-started relaxations + presolve, the default) and by the cold engine
// (both layers disabled, the pre-PR behaviour). The warm/cold time ratio is
// the per-solve win; warm_hit_rate reports how often basis reuse succeeded.
func BenchmarkWarmVsColdRelaxation(b *testing.B) {
	instances := make([]*miqp.Problem, 8)
	rng := rand.New(rand.NewSource(3))
	for i := range instances {
		// Shaped like the per-edge stage-2 program: binary deploy decisions
		// linked to integer batch counts, nested budget rows, and a wide
		// integer box so the search tree is deep enough for basis reuse.
		pairs := 10 + rng.Intn(4)
		n := 2 * pairs
		p := &miqp.Problem{
			C:       make([]float64, n),
			Ub:      make([]float64, n),
			Integer: make([]bool, n),
		}
		for j := 0; j < pairs; j++ {
			x, bb := 2*j, 2*j+1
			p.Integer[x], p.Integer[bb] = true, true
			p.Ub[x] = 1
			cap := float64(10 + rng.Intn(30))
			p.Ub[bb] = cap
			p.C[x] = 0.5 + rng.Float64()     // deployment fixed cost
			p.C[bb] = -2 + 1.5*rng.Float64() // per-request reward
			// b ≤ cap·x: no service without deployment.
			row := make([]float64, n)
			row[bb], row[x] = 1, -cap
			p.Aub = append(p.Aub, row)
			p.Bub = append(p.Bub, 0)
		}
		for r := 0; r < 4; r++ {
			row := make([]float64, n)
			var sum float64
			for j := 0; j < pairs; j++ {
				row[2*j+1] = 0.5 + 2*rng.Float64()
				sum += row[2*j+1] * p.Ub[2*j+1]
			}
			p.Aub = append(p.Aub, row)
			p.Bub = append(p.Bub, sum*(0.2+0.3*rng.Float64()))
		}
		// Conservation equalities over app groups (served + headroom = demand),
		// the rows that make a cold phase 1 expensive and warm re-entry —
		// which needs no artificial variables — profitable.
		const groups = 3
		for g := 0; g < groups; g++ {
			p.C = append(p.C, 0.1)
			p.Ub = append(p.Ub, 0)
			p.Integer = append(p.Integer, false)
		}
		for r := range p.Aub {
			p.Aub[r] = append(p.Aub[r], make([]float64, groups)...)
		}
		for g := 0; g < groups; g++ {
			row := make([]float64, n+groups)
			var demand float64
			for j := g; j < pairs; j += groups {
				row[2*j+1] = 1
				demand += p.Ub[2*j+1]
			}
			row[n+g] = 1 // headroom slack
			p.Ub[n+g] = demand
			p.Aeq = append(p.Aeq, row)
			p.Beq = append(p.Beq, demand*(0.4+0.3*rng.Float64()))
		}
		instances[i] = p
	}
	for _, cfg := range []struct {
		name string
		opt  miqp.Options
	}{
		{"warm", miqp.Options{}},
		{"cold", miqp.Options{DisableWarmStart: true, DisablePresolve: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var stats miqp.Stats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := miqp.SolveOpts(instances[i%len(instances)], cfg.opt)
				if err != nil {
					b.Fatal(err)
				}
				stats.Add(res.Stats)
			}
			b.ReportMetric(float64(stats.Relaxations)/float64(b.N), "relax/solve")
			if stats.WarmAttempts > 0 {
				b.ReportMetric(stats.WarmHitRate(), "warm_hit_rate")
			}
		})
	}
}
