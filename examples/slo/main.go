// SLO-classes scenario: the paper's introduction motivates *different*
// response-time SLOs per application; this example gives the object-detection
// stream a deadline of 30% of the slot while face recognition keeps the full
// slot, and shows how BIRP's nested per-class compute budgets plus
// earliest-deadline execution keep the tight class inside its deadline.
//
//	go run ./examples/slo
package main

import (
	"fmt"
	"log"

	birp "repro"
)

func main() {
	cluster := birp.SmallCluster()
	apps := birp.Catalogue(2, 3)
	apps[0].SLOFrac = 0.3 // object detection: 3 s deadline on a 10 s slot
	fmt.Printf("%s: SLO = %.0f%% of the slot (latency-critical)\n", apps[0].Name, 100*apps[0].SLO())
	fmt.Printf("%s: SLO = %.0f%% of the slot\n\n", apps[1].Name, 100*apps[1].SLO())

	sched, err := birp.NewBIRP(cluster, apps, birp.SchedulerOptions{})
	if err != nil {
		log.Fatal(err)
	}
	trace, err := birp.GenerateTrace(birp.TraceConfig{
		Apps: 2, Edges: cluster.N(), Slots: 60, Seed: 13,
		MeanPerSlot: 35, Imbalance: 0.8, BurstProb: 0.05, BurstScale: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	sim, err := birp.NewSimulator(cluster, apps, 0.02, 13)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(sched, trace.R)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("served %d requests over %d slots\n", res.Served, res.Loss.Slots())
	fmt.Printf("total loss %.1f, cluster energy %.1f kJ\n", res.Loss.Total(), res.EnergyJ/1000)
	fmt.Printf("SLO failures (per-application deadlines): %.2f%%\n\n", 100*res.FailureRate())

	fmt.Println("How it works:")
	fmt.Println("  * the per-edge program carries one compute budget per SLO class:")
	fmt.Println("    everything with SLO <= 0.3 must fit in 0.3·τ, everything <= 1.0 in τ;")
	fmt.Println("  * the executor runs the tight class first (earliest deadline),")
	fmt.Println("    so its completions land inside the 0.3·τ window it was planned for.")
}
