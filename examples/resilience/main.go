// Resilience demo: the distributed prototype surviving an edge crash — and
// the crashed edge coming back. Three agents serve a live workload; one of
// them is killed after a few slots, and a replacement agent for the same edge
// is started shortly after. The scheduler detects the dead connection, marks
// the edge down, redistributes its load — then resyncs the replacement at a
// slot boundary, clears the down flag, and routes work back to it.
//
//	go run ./examples/resilience
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	birp "repro"
)

func main() {
	cluster := birp.SmallCluster()
	apps := birp.Catalogue(1, 3)
	slots := 24

	sched, err := birp.NewBIRP(cluster, apps, birp.SchedulerOptions{})
	if err != nil {
		log.Fatal(err)
	}
	server, err := birp.NewSchedulerServer(birp.ServerConfig{
		Listen: "127.0.0.1:0", Cluster: cluster, Apps: apps,
		Scheduler: sched, Slots: slots,
		SlotTimeout:      5 * time.Second,
		TolerateFailures: true, // the point of this demo
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheduler on %s (failure tolerance ON)\n", server.Addr())

	trace, err := birp.GenerateTrace(birp.TraceConfig{
		Apps: 1, Edges: cluster.N(), Slots: slots, Seed: 21,
		MeanPerSlot: 60, Imbalance: 0.6,
	})
	if err != nil {
		log.Fatal(err)
	}

	mkAgent := func(k int) *birp.EdgeAgent {
		arrivals := make([][]int, slots)
		for t := 0; t < slots; t++ {
			arrivals[t] = []int{trace.R[t][0][k]}
		}
		agent, err := birp.NewEdgeAgent(birp.AgentConfig{
			Addr: server.Addr().String(), EdgeID: k,
			Device: cluster.Edges[k].Device, Apps: apps,
			Arrivals: arrivals, NoiseSigma: 0.02, Seed: int64(k),
			// A little real pacing so the kill and restart land mid-run.
			Realtime: 0.01,
			// The replacement re-registers through the same dial path; a few
			// retries cover the window before the scheduler notices the death.
			DialRetries: 5, Backoff: 50 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		return agent
	}

	rootCtx, cancelAll := context.WithTimeout(context.Background(), time.Minute)
	defer cancelAll()
	victimCtx, killVictim := context.WithCancel(rootCtx)
	var wg sync.WaitGroup
	for k := 0; k < cluster.N(); k++ {
		agent := mkAgent(k)
		ctx := rootCtx
		if k == 1 {
			ctx = victimCtx // edge 1 will be killed
		}
		wg.Add(1)
		go func(k int, ctx context.Context, agent *birp.EdgeAgent) {
			defer wg.Done()
			if err := agent.Run(ctx); err != nil {
				fmt.Printf("edge %d terminated: %v\n", k, err)
			}
		}(k, ctx, agent)
		fmt.Printf("edge %d (%s) up\n", k, cluster.Edges[k].Device.Name)
	}

	// Kill edge 1 shortly into the run, then bring up a replacement agent for
	// the same edge — as if the crashed process had been restarted.
	//birplint:ignore goroleak // demo choreography: fire-and-forget killer, bounded by the one-minute root context and process exit
	go func() {
		time.Sleep(300 * time.Millisecond)
		fmt.Println(">>> killing edge 1 <<<")
		killVictim()
		time.Sleep(200 * time.Millisecond)
		fmt.Println(">>> restarting edge 1 <<<")
		replacement := mkAgent(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := replacement.Run(rootCtx); err != nil {
				fmt.Printf("edge 1 (restarted) terminated: %v\n", err)
			}
		}()
	}()

	report, err := server.Run(rootCtx)
	if err != nil {
		log.Fatal(err)
	}
	wg.Wait()

	fmt.Printf("\nrun complete: failures on edges %v, rejoins by %v\n",
		report.FailedEdges, report.RejoinedEdges)
	fmt.Printf("  served  %d requests (dropped %d)\n", report.Served, report.Dropped)
	fmt.Printf("  loss    %.1f over %d slots\n", report.Loss.Total(), report.Loss.Slots())
	fmt.Printf("  p%%      %.2f%%\n", 100*report.FailureRate())
	for _, k := range report.FailedEdges {
		fmt.Printf("  edge %d  down %d/%d slots, served %d requests\n",
			k, report.DownSlots[k], slots, report.ServedByEdge[k])
	}
	fmt.Println("\nThe scheduler marked the dead edge down (SetEdgeDown), redistributed")
	fmt.Println("its region's arrivals, then resync'd the restarted agent at a slot")
	fmt.Println("boundary and routed work back — every plan stayed constraint-clean.")
}
