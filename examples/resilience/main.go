// Resilience demo: the distributed prototype surviving an edge crash. Three
// agents serve a live workload; one of them is killed after a few slots. The
// scheduler detects the dead connection, marks the edge down, stops routing
// work to it, and the remaining edges absorb the load.
//
//	go run ./examples/resilience
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	birp "repro"
)

func main() {
	cluster := birp.SmallCluster()
	apps := birp.Catalogue(1, 3)
	slots := 24

	sched, err := birp.NewBIRP(cluster, apps, birp.SchedulerOptions{})
	if err != nil {
		log.Fatal(err)
	}
	server, err := birp.NewSchedulerServer(birp.ServerConfig{
		Listen: "127.0.0.1:0", Cluster: cluster, Apps: apps,
		Scheduler: sched, Slots: slots,
		SlotTimeout:      5 * time.Second,
		TolerateFailures: true, // the point of this demo
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheduler on %s (failure tolerance ON)\n", server.Addr())

	trace, err := birp.GenerateTrace(birp.TraceConfig{
		Apps: 1, Edges: cluster.N(), Slots: slots, Seed: 21,
		MeanPerSlot: 60, Imbalance: 0.6,
	})
	if err != nil {
		log.Fatal(err)
	}

	rootCtx, cancelAll := context.WithTimeout(context.Background(), time.Minute)
	defer cancelAll()
	victimCtx, killVictim := context.WithCancel(rootCtx)
	var wg sync.WaitGroup
	for k := 0; k < cluster.N(); k++ {
		arrivals := make([][]int, slots)
		for t := 0; t < slots; t++ {
			arrivals[t] = []int{trace.R[t][0][k]}
		}
		agent, err := birp.NewEdgeAgent(birp.AgentConfig{
			Addr: server.Addr().String(), EdgeID: k,
			Device: cluster.Edges[k].Device, Apps: apps,
			Arrivals: arrivals, NoiseSigma: 0.02, Seed: int64(k),
			// A little real pacing so the kill lands mid-run.
			Realtime: 0.002,
		})
		if err != nil {
			log.Fatal(err)
		}
		ctx := rootCtx
		if k == 1 {
			ctx = victimCtx // edge 1 will be killed
		}
		wg.Add(1)
		go func(k int, ctx context.Context) {
			defer wg.Done()
			if err := agent.Run(ctx); err != nil {
				fmt.Printf("edge %d terminated: %v\n", k, err)
			}
		}(k, ctx)
		fmt.Printf("edge %d (%s) up\n", k, cluster.Edges[k].Device.Name)
	}

	// Kill edge 1 shortly into the run.
	go func() {
		time.Sleep(400 * time.Millisecond)
		fmt.Println(">>> killing edge 1 <<<")
		killVictim()
	}()

	report, err := server.Run(rootCtx)
	if err != nil {
		log.Fatal(err)
	}
	wg.Wait()

	fmt.Printf("\nrun complete despite failures on edges %v:\n", report.FailedEdges)
	fmt.Printf("  served  %d requests (dropped %d)\n", report.Served, report.Dropped)
	fmt.Printf("  loss    %.1f over %d slots\n", report.Loss.Total(), report.Loss.Slots())
	fmt.Printf("  p%%      %.2f%%\n", 100*report.FailureRate())
	fmt.Println("\nThe scheduler marked the dead edge down (SetEdgeDown), redistributed")
	fmt.Println("its region's remaining arrivals, and kept every plan constraint-clean.")
}
