// Quickstart: build the paper's small-scale edge collaborative system, run
// BIRP for 20 slots on a synthetic workload, and print what happened.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	birp "repro"
)

func main() {
	// One edge per device type (Jetson NX, Jetson Nano, Atlas 200DK).
	cluster := birp.SmallCluster()
	// One application with a three-version model ladder (ResNet-18 → BERT).
	apps := birp.Catalogue(1, 3)

	// BIRP with the paper's ε1 = 0.04, ε2 = 0.07 presets.
	scheduler, err := birp.NewBIRP(cluster, apps, birp.SchedulerOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// A bursty, diurnally-skewed workload: hot edges emerge and rotate.
	trace, err := birp.GenerateTrace(birp.TraceConfig{
		Apps: 1, Edges: cluster.N(), Slots: 20, Seed: 42,
		MeanPerSlot: 60, Imbalance: 0.8, BurstProb: 0.1, BurstScale: 2,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Simulate with 2% execution-time noise.
	sim, err := birp.NewSimulator(cluster, apps, 0.02, 42)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(scheduler, trace.R)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("served %d requests over %d slots\n", res.Served, res.Loss.Slots())
	fmt.Printf("total inference loss: %.1f (%.3f per request)\n",
		res.Loss.Total(), res.Loss.Total()/float64(res.Served))
	fmt.Printf("SLO failure rate: %.2f%%\n", 100*res.FailureRate())
	fmt.Printf("per-slot loss (first 10): ")
	for t := 0; t < 10 && t < res.Loss.Slots(); t++ {
		fmt.Printf("%.0f ", res.Loss.PerSlot()[t])
	}
	fmt.Println()
}
