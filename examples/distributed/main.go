// Distributed prototype demo: boots the scheduler server and one edge agent
// per edge inside a single process (each agent on its own goroutine with its
// own TCP connection), runs 30 live scheduling rounds, and prints the
// aggregated report. The same binaries can run across machines — see
// cmd/birpsched and cmd/birpedge.
//
//	go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	birp "repro"
)

func main() {
	cluster := birp.SmallCluster()
	apps := birp.Catalogue(1, 3)
	slots := 30

	sched, err := birp.NewBIRP(cluster, apps, birp.SchedulerOptions{})
	if err != nil {
		log.Fatal(err)
	}
	server, err := birp.NewSchedulerServer(birp.ServerConfig{
		Listen: "127.0.0.1:0", Cluster: cluster, Apps: apps,
		Scheduler: sched, Slots: slots, SlotTimeout: 10 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheduler listening on %s\n", server.Addr())

	// Shared trace: every agent carves out its own edge's arrivals.
	trace, err := birp.GenerateTrace(birp.TraceConfig{
		Apps: 1, Edges: cluster.N(), Slots: slots, Seed: 11,
		MeanPerSlot: 70, Imbalance: 0.8, BurstProb: 0.1, BurstScale: 2,
	})
	if err != nil {
		log.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	for k := 0; k < cluster.N(); k++ {
		arrivals := make([][]int, slots)
		for t := 0; t < slots; t++ {
			arrivals[t] = []int{trace.R[t][0][k]}
		}
		agent, err := birp.NewEdgeAgent(birp.AgentConfig{
			Addr: server.Addr().String(), EdgeID: k,
			Device: cluster.Edges[k].Device, Apps: apps,
			Arrivals: arrivals, NoiseSigma: 0.02, Seed: int64(100 + k),
		})
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			if err := agent.Run(ctx); err != nil {
				log.Printf("edge %d: %v", k, err)
			}
		}(k)
		fmt.Printf("edge %d (%s) launched\n", k, cluster.Edges[k].Device.Name)
	}

	report, err := server.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	wg.Wait()

	fmt.Printf("\ndistributed run complete:\n")
	fmt.Printf("  served   %d requests (dropped %d)\n", report.Served, report.Dropped)
	fmt.Printf("  loss     %.1f total over %d slots\n", report.Loss.Total(), report.Loss.Slots())
	fmt.Printf("  p%%       %.2f%% SLO failures\n", 100*report.FailureRate())
}
