// Industrial-IoT scenario: the paper's §5 large-scale setting — five
// intelligent applications (object detection, face recognition, image
// recognition, language understanding, semantic segmentation), each with a
// five-version model ladder, on the full six-edge heterogeneous cluster.
// The example inspects BIRP's behaviour in depth: which model versions it
// picks over time and how the online TIR tuner's estimates converge.
//
//	go run ./examples/iiot
package main

import (
	"fmt"
	"log"

	birp "repro"
)

// versionSpy wraps a scheduler and counts requests per chosen version.
type versionSpy struct {
	birp.Scheduler
	perVersion map[int]int
}

func (s *versionSpy) Decide(t int, arrivals [][]int) (*birp.Plan, error) {
	plan, err := s.Scheduler.Decide(t, arrivals)
	if plan != nil {
		for _, d := range plan.Deployments {
			s.perVersion[d.Version] += d.Requests
		}
	}
	return plan, err
}

func main() {
	cluster := birp.DefaultCluster()
	apps := birp.Catalogue(5, 5)
	for _, a := range apps {
		fmt.Printf("application %-24s %d versions, request size %.1f MB, loss %.2f..%.2f\n",
			a.Name, len(a.Models), a.RequestMB,
			a.Models[len(a.Models)-1].Loss, a.Models[0].Loss)
	}

	sched, err := birp.NewBIRP(cluster, apps, birp.SchedulerOptions{})
	if err != nil {
		log.Fatal(err)
	}
	spy := &versionSpy{Scheduler: sched, perVersion: map[int]int{}}

	trace, err := birp.GenerateTrace(birp.TraceConfig{
		Apps: 5, Edges: cluster.N(), Slots: 96, Seed: 3,
		MeanPerSlot: 31, Imbalance: 0.8, BurstProb: 0.05, BurstScale: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	sim, err := birp.NewSimulator(cluster, apps, 0.02, 3)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(spy, trace.R)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nserved %d requests, loss %.1f, SLO failures %.2f%%\n",
		res.Served, res.Loss.Total(), 100*res.FailureRate())
	fmt.Println("\nmodel-version mix (0 = smallest/least accurate):")
	total := 0
	for _, n := range spy.perVersion {
		total += n
	}
	for v := 0; v < 5; v++ {
		n := spy.perVersion[v]
		bar := ""
		for i := 0; i < 40*n/total; i++ {
			bar += "#"
		}
		fmt.Printf("  v%d %6d (%4.1f%%) %s\n", v, n, 100*float64(n)/float64(total), bar)
	}
	fmt.Println("\nBatching frees enough accelerator time that the mid and large")
	fmt.Println("versions stay affordable even through the diurnal peaks.")
}
