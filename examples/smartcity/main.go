// Smart-city scenario: the motivating workload of the paper's introduction —
// camera-heavy object detection whose load follows the commute cycle, with
// sharp hot/idle imbalance between districts. The example runs BIRP and the
// serial OAEI baseline side by side and shows where the batch-aware
// redistribution pays: peak-hour slots.
//
//	go run ./examples/smartcity
package main

import (
	"fmt"
	"log"

	birp "repro"
)

func main() {
	cluster := birp.DefaultCluster() // six edges across the city
	// Two applications: object detection (dominant) and face recognition.
	apps := birp.Catalogue(2, 4)

	// Commute-cycle workload: strong diurnal swing, frequent bursts
	// (events, incidents) hitting single districts.
	trace, err := birp.GenerateTrace(birp.TraceConfig{
		Apps: 2, Edges: cluster.N(), Slots: 96, Seed: 7, // one simulated day
		MeanPerSlot: 70, Imbalance: 0.9, BurstProb: 0.08, BurstScale: 2.5,
	})
	if err != nil {
		log.Fatal(err)
	}

	type contender struct {
		name string
		mk   func() (birp.Scheduler, error)
	}
	contenders := []contender{
		{"BIRP", func() (birp.Scheduler, error) {
			return birp.NewBIRP(cluster, apps, birp.SchedulerOptions{})
		}},
		{"OAEI", func() (birp.Scheduler, error) {
			return birp.NewOAEI(cluster, apps, birp.SchedulerOptions{Seed: 7})
		}},
	}

	var results []*birp.Results
	for _, c := range contenders {
		sched, err := c.mk()
		if err != nil {
			log.Fatal(err)
		}
		sim, err := birp.NewSimulator(cluster, apps, 0.02, 7)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(sched, trace.R)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, res)
		fmt.Printf("%-5s  loss %9.1f   p%% %5.2f%%   served %d (dropped %d)\n",
			res.Scheduler, res.Loss.Total(), 100*res.FailureRate(), res.Served, res.Dropped)
	}

	// Where does batching pay? Compare per-slot losses at the peak hours.
	fmt.Println("\npeak-hour per-slot loss (slots 20..28, morning commute):")
	fmt.Printf("%6s %10s %10s\n", "slot", "BIRP", "OAEI")
	for t := 20; t <= 28; t++ {
		fmt.Printf("%6d %10.1f %10.1f\n", t,
			results[0].Loss.PerSlot()[t], results[1].Loss.PerSlot()[t])
	}
	b, o := results[0], results[1]
	fmt.Printf("\nBIRP vs OAEI: loss %+.1f%%, SLO failures %.2f%% vs %.2f%%\n",
		100*(b.Loss.Total()/o.Loss.Total()-1),
		100*b.FailureRate(), 100*o.FailureRate())
}
