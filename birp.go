// Package birp is the public API of this BIRP reproduction: batch-aware
// inference workload redistribution and parallel execution for edge
// collaborative systems (Sun et al., ICPP 2023).
//
// The package re-exports the stable surface of the internal packages:
//
//   - topology and workloads: DefaultCluster, SmallCluster, Catalogue,
//     GenerateTrace;
//   - schedulers: NewBIRP (the paper's contribution), NewBIRPOff, NewOAEI,
//     NewMAX (the evaluation baselines);
//   - executors: NewSimulator (slot-level simulation) and the edgenet
//     distributed prototype re-exported as SchedulerServer/EdgeAgent;
//   - experiments: Table1, Fig2, Fig6, Fig7, PresetSweep regenerate the
//     paper's tables and figures.
//
// See README.md for a quickstart and DESIGN.md for the system inventory.
package birp

import (
	"io"

	"repro/internal/accel"
	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/edgenet"
	"repro/internal/edgesim"
	"repro/internal/experiments"
	"repro/internal/mat"
	"repro/internal/metrics"
	"repro/internal/miqp"
	"repro/internal/models"
	"repro/internal/serve"
	"repro/internal/trace"
)

// Re-exported core types. These aliases are the supported public names; the
// internal packages may reorganize underneath them.
type (
	// Cluster is the edge collaborative system topology.
	Cluster = cluster.Cluster
	// Edge is one participant edge.
	Edge = cluster.Edge
	// Application is one intelligent application with its model ladder.
	Application = models.Application
	// Model is one deployable DNN model version.
	Model = models.Model
	// Scheduler is a per-slot decision maker.
	Scheduler = edgesim.Scheduler
	// Plan is one slot's decision (deployments, transfers, drops).
	Plan = edgesim.Plan
	// Results aggregates a simulation run.
	Results = edgesim.Results
	// Trace is an arrival stream r[t][i][k].
	Trace = trace.Trace
	// TraceConfig parameterizes the synthetic workload generator.
	TraceConfig = trace.Config
	// SchedulerServer is the distributed prototype's coordinator.
	SchedulerServer = edgenet.Server
	// EdgeAgent is the distributed prototype's per-edge worker.
	EdgeAgent = edgenet.Agent
	// ServerConfig configures a SchedulerServer.
	ServerConfig = edgenet.ServerConfig
	// AgentConfig configures an EdgeAgent.
	AgentConfig = edgenet.AgentConfig
	// Report aggregates a distributed run (failed/rejoined edges included).
	Report = edgenet.Report
	// ExperimentOptions parameterizes the paper-experiment runners.
	ExperimentOptions = experiments.Options
	// EvalResult is one algorithm's outcome in a comparison experiment.
	EvalResult = experiments.EvalResult
	// SolverStats aggregates the MIQP engine's observability counters
	// (branch-and-bound nodes, warm-start hit rate, simplex pivots, presolve
	// reductions); EvalResult.Solver carries them for the BIRP arms.
	SolverStats = miqp.Stats
	// ServeLoop is the online serving loop: admission → routing against an
	// immutable plan snapshot, with background re-optimization over the
	// rolling arrival window (cmd/birpserve is its daemon front end).
	ServeLoop = serve.Loop
	// ServeConfig assembles a ServeLoop.
	ServeConfig = serve.Config
	// ServeRequest is one inference request offered to the serving loop.
	ServeRequest = serve.Request
	// ServeDecision is the outcome of one served request.
	ServeDecision = serve.Decision
	// ServeStats aggregates the serving loop's admission/routing/staleness
	// counters.
	ServeStats = metrics.ServeStats
	// ServePlanner re-solves the slot optimizer over a rolling window.
	ServePlanner = serve.Planner
	// ServeFrontend serves the JSON-lines request protocol over TCP.
	ServeFrontend = serve.Frontend
)

// DefaultCluster returns the paper's testbed: Jetson NX, Jetson Nano, and
// Atlas 200DK, two instances each.
func DefaultCluster() *Cluster { return cluster.Default() }

// SmallCluster returns the small-scale testbed: one edge per device type.
func SmallCluster() *Cluster { return cluster.Small() }

// EdgeSpec describes one edge for CustomCluster.
type EdgeSpec = cluster.EdgeSpec

// Devices available for custom clusters.
var (
	JetsonNano = &accel.JetsonNano
	JetsonNX   = &accel.JetsonNX
	Atlas200DK = &accel.Atlas200DK
	EdgeTPU    = &accel.EdgeTPU
)

// CustomCluster builds an arbitrary validated topology.
func CustomCluster(specs []EdgeSpec, opts ...cluster.Option) (*Cluster, error) {
	return cluster.Custom(specs, opts...)
}

// WithSlotSeconds overrides a cluster's slot duration at construction.
func WithSlotSeconds(s float64) cluster.Option { return cluster.WithSlotSeconds(s) }

// WithSeed sets a cluster's per-slot bandwidth-realization seed.
func WithSeed(seed int64) cluster.Option { return cluster.WithSeed(seed) }

// ScaledCluster builds a seeded synthetic fleet of k heterogeneous edges for
// scale experiments (K up to the hundreds) — the natural topology for
// hierarchical scheduling (SchedulerOptions.Domains/DomainSize).
func ScaledCluster(k int, opts ...cluster.Option) (*Cluster, error) {
	return cluster.Scaled(k, opts...)
}

// Catalogue builds the evaluation model catalogue (nApps applications ×
// nVersions model versions spanning the paper's parameter ranges).
func Catalogue(nApps, nVersions int) []*Application { return models.Catalogue(nApps, nVersions) }

// DefaultTraceConfig is the evaluation workload setting (5 apps, 6 edges,
// three days of 15-minute slots).
func DefaultTraceConfig() TraceConfig { return trace.DefaultConfig() }

// GenerateTrace builds a synthetic arrival stream.
func GenerateTrace(cfg TraceConfig) (*Trace, error) { return trace.Generate(cfg) }

// LoadTrace reads a trace previously written with Trace.Save.
func LoadTrace(r io.Reader) (*Trace, error) { return trace.Load(r) }

// SchedulerOptions tunes scheduler construction.
type SchedulerOptions struct {
	// Eps1, Eps2 are BIRP's MAB presets (0 = the paper's 0.04/0.07).
	Eps1, Eps2 float64
	// Seed drives OAEI's randomized rounding.
	Seed int64
	// B0 is MAX's fixed batch size (0 = 16).
	B0 int
	// ProfileMaxBatch bounds BIRP-OFF's offline TIR profiling (0 = 16).
	ProfileMaxBatch int
	// Workers bounds BIRP's solve parallelism (concurrent per-edge MILPs and
	// branch-and-bound relaxations). ≤ 0 means one worker per CPU. Decisions
	// are bit-identical for every value; only wall-clock time changes.
	Workers int
	// DisableSlotReuse turns off the cross-slot temporal acceleration layer
	// (incumbent seeding from the previous slot's plan, plan memoization) for
	// the core-family schedulers, so every slot solves cold. Reuse only
	// changes the certified starting incumbent; reuse-on and reuse-off
	// decisions agree within the solver's gap tolerance.
	DisableSlotReuse bool
	// DenseEngine solves every LP relaxation with the legacy dense tableau
	// engine instead of the sparse revised simplex — an A/B oracle switch for
	// verifying the revised engine. Both engines certify the same optima, so
	// decisions agree within the solver's gap tolerance.
	DenseEngine bool
	// NoFactorReuse disables cross-node LU factorization reuse inside each
	// branch & bound tree (every warm re-entry refactorizes, the pre-reuse
	// behavior). A/B switch: decisions are byte-identical either way; only
	// the factorization counters move.
	NoFactorReuse bool
	// Domains > 0 enables hierarchical domain-decomposed scheduling with
	// exactly that many collaboration domains: each domain solves its own
	// redistribution LP + per-edge MILPs concurrently behind a deterministic
	// cross-domain coordinator. Near-linear scaling to fleets of hundreds of
	// edges; decisions remain bit-identical across Workers values.
	Domains int
	// DomainSize bounds domain sizes instead of fixing the count (the fleet
	// splits into ⌈K/DomainSize⌉ domains). Either knob enables hierarchical
	// scheduling; both zero means monolithic.
	DomainSize int
}

// coreMod returns a config hook forwarding the shared core knobs.
func (o SchedulerOptions) coreMod() func(*core.Config) {
	return func(cfg *core.Config) {
		cfg.Workers = o.Workers
		cfg.DisableSlotReuse = o.DisableSlotReuse
		cfg.DenseEngine = o.DenseEngine
		cfg.NoFactorReuse = o.NoFactorReuse
		cfg.Domains = o.Domains
		cfg.DomainSize = o.DomainSize
	}
}

func (o SchedulerOptions) withDefaults() SchedulerOptions {
	if mat.Zero(o.Eps1) {
		o.Eps1 = 0.04
	}
	if mat.Zero(o.Eps2) {
		o.Eps2 = 0.07
	}
	if o.B0 == 0 {
		o.B0 = 16
	}
	if o.ProfileMaxBatch == 0 {
		o.ProfileMaxBatch = 16
	}
	return o
}

// NewBIRP builds the paper's scheduler: batch-aware redistribution with
// online MAB hyperparameter tuning.
func NewBIRP(c *Cluster, apps []*Application, opt SchedulerOptions) (Scheduler, error) {
	opt = opt.withDefaults()
	cfg := core.Config{
		Cluster: c, Apps: apps,
		Provider: core.NewOnlineTuner(opt.Eps1, opt.Eps2),
	}
	opt.coreMod()(&cfg)
	return core.New(cfg)
}

// NewBIRPOff builds the BIRP-OFF baseline (offline-profiled TIR, no tuning).
func NewBIRPOff(c *Cluster, apps []*Application, opt SchedulerOptions) (Scheduler, error) {
	opt = opt.withDefaults()
	return baseline.NewBIRPOffConfig(c, apps, opt.ProfileMaxBatch, opt.coreMod())
}

// NewOAEI builds the serial model-selection baseline.
func NewOAEI(c *Cluster, apps []*Application, opt SchedulerOptions) (Scheduler, error) {
	return baseline.NewOAEIConfig(c, apps, opt.Seed, opt.coreMod())
}

// NewMAX builds the fixed-batch baseline.
func NewMAX(c *Cluster, apps []*Application, opt SchedulerOptions) (Scheduler, error) {
	opt = opt.withDefaults()
	return baseline.NewMAXConfig(c, apps, opt.B0, opt.coreMod())
}

// Simulator runs schedulers against arrival streams on the device models.
type Simulator = edgesim.Sim

// NewSimulator builds a slot-level simulator. noiseSigma is the relative
// execution-time noise; seed drives it.
func NewSimulator(c *Cluster, apps []*Application, noiseSigma float64, seed int64) (*Simulator, error) {
	return edgesim.New(edgesim.Config{Cluster: c, Apps: apps, NoiseSigma: noiseSigma, Seed: seed})
}

// NewServeLoop builds the online serving loop.
func NewServeLoop(cfg ServeConfig) (*ServeLoop, error) { return serve.NewLoop(cfg) }

// NewServeFrontend listens on addr and serves the JSON-lines request
// protocol against loop; nowNS stamps arrivals that carry no timestamp.
func NewServeFrontend(loop *ServeLoop, addr string, nowNS func() int64) (*ServeFrontend, error) {
	return serve.NewFrontend(loop, addr, nowNS)
}

// NewServeAdmission builds an admission policy by name ("always",
// "token-bucket"); capacity/ratePerSec parameterize the token bucket.
func NewServeAdmission(name string, capacity, ratePerSec float64) (serve.AdmissionPolicy, error) {
	return serve.NewAdmission(name, capacity, ratePerSec)
}

// NewServeRouter builds a router by name ("round-robin", "least-loaded",
// "affinity").
func NewServeRouter(name string) (serve.Router, error) { return serve.NewRouter(name) }

// ServePlannerFor adapts a scheduler into the serving loop's re-optimizer.
// The core-family schedulers (NewBIRP and friends) implement the windowed
// re-solve natively — rate rescaling plus the cross-slot reuse layer; any
// other Scheduler is fed each window as the next slot's arrivals unscaled.
func ServePlannerFor(s Scheduler) ServePlanner {
	if p, ok := s.(ServePlanner); ok {
		return p
	}
	return serve.NewSlotPlanner(s)
}

// NewSchedulerServer builds the distributed prototype's coordinator.
func NewSchedulerServer(cfg ServerConfig) (*SchedulerServer, error) { return edgenet.NewServer(cfg) }

// NewEdgeAgent builds one distributed edge worker.
func NewEdgeAgent(cfg AgentConfig) (*EdgeAgent, error) { return edgenet.NewAgent(cfg) }

// Fig1 quantifies the redistribution behaviour the paper's Fig. 1 sketches.
func Fig1(w io.Writer, opt ExperimentOptions) (*experiments.Fig1Stats, error) {
	return experiments.Fig1(w, opt)
}

// Table1 regenerates the paper's Table 1 (utilization and FPS rows).
func Table1(w io.Writer) []experiments.Table1Row { return experiments.Table1(w) }

// Fig2 regenerates the paper's Fig. 2 (TIR laws with piecewise fits).
func Fig2(w io.Writer, seed int64) ([]experiments.Fig2Panel, error) {
	return experiments.Fig2(w, seed)
}

// Fig6 regenerates the small-scale comparison (paper Fig. 6).
func Fig6(w io.Writer, opt ExperimentOptions) ([]EvalResult, error) {
	return experiments.Fig6(w, opt)
}

// Fig7 regenerates the large-scale comparison (paper Fig. 7).
func Fig7(w io.Writer, opt ExperimentOptions) ([]EvalResult, error) {
	return experiments.Fig7(w, opt)
}

// Scale runs the fleet-scaling experiment: BIRP (monolithic or hierarchical
// per opt.Hierarchical/Domains/DomainSize) on a seeded Scaled(opt.K) fleet.
func Scale(w io.Writer, opt ExperimentOptions) (*experiments.ScaleResult, error) {
	return experiments.Scale(w, opt)
}

// PresetSweep regenerates the ε1/ε2 preset analysis (paper Fig. 4 and 5).
func PresetSweep(w io.Writer, opt ExperimentOptions, snapshots []int) ([]experiments.SweepPoint, error) {
	return experiments.PresetSweep(w, opt, snapshots)
}

// Convergence runs the extension experiment tracking how the online MAB
// tuner's TIR estimates approach the offline-profiled truth.
func Convergence(w io.Writer, opt ExperimentOptions) ([]experiments.ConvergencePoint, error) {
	return experiments.Convergence(w, opt)
}

// Ablations runs the four design-choice ablations DESIGN.md documents and
// returns each configuration's loss/failure outcome.
func Ablations(w io.Writer, opt ExperimentOptions) ([]experiments.AblationResult, error) {
	return experiments.Ablations(w, opt)
}

// Scorecard grades every qualitative claim of the paper's evaluation against
// measured results and prints a PASS/FAIL table.
func Scorecard(w io.Writer, opt ExperimentOptions) ([]experiments.Check, error) {
	return experiments.Scorecard(w, opt)
}

// Sensitivity sweeps workload intensity and reports loss/p% per algorithm.
func Sensitivity(w io.Writer, opt ExperimentOptions, loads []float64) ([]experiments.SensitivityPoint, error) {
	return experiments.Sensitivity(w, opt, loads)
}

// WriteComparisonCSV exports a comparison's panels as CSV files.
func WriteComparisonCSV(dir, prefix string, results []EvalResult) error {
	return experiments.WriteComparisonCSV(dir, prefix, results)
}

// WriteSweepCSV exports the Fig. 4/5 preset surfaces as CSV.
func WriteSweepCSV(dir string, points []experiments.SweepPoint, snapshots []int) error {
	return experiments.WriteSweepCSV(dir, points, snapshots)
}
